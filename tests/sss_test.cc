// Unit and property tests for the secret-sharing core (Sections III & IV).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "sss/order_preserving.h"
#include "sss/shamir.h"

namespace ssdb {
namespace {

SharingContext MakeCtx(size_t n, size_t k, uint64_t seed = 42) {
  Rng rng(seed);
  auto ctx = SharingContext::CreateRandom(n, k, &rng);
  EXPECT_TRUE(ctx.ok());
  return std::move(ctx).value();
}

TEST(Shamir, CreateValidation) {
  Rng rng(1);
  EXPECT_FALSE(SharingContext::Create(0, 0, {}).ok());
  EXPECT_FALSE(SharingContext::Create(2, 3, {Fp61::FromU64(1), Fp61::FromU64(2)}).ok());
  EXPECT_FALSE(
      SharingContext::Create(2, 1, {Fp61::FromU64(0), Fp61::FromU64(2)}).ok());
  EXPECT_FALSE(
      SharingContext::Create(2, 1, {Fp61::FromU64(5), Fp61::FromU64(5)}).ok());
  EXPECT_TRUE(
      SharingContext::Create(2, 2, {Fp61::FromU64(5), Fp61::FromU64(6)}).ok());
}

TEST(Shamir, SplitReconstructRoundTrip) {
  Rng rng(2);
  const SharingContext ctx = MakeCtx(5, 3);
  for (int trial = 0; trial < 100; ++trial) {
    const Fp61 secret = Fp61::FromU64(rng.Next());
    const auto shares = ctx.Split(secret, &rng);
    ASSERT_EQ(shares.size(), 5u);
    // Any 3 shares reconstruct.
    std::vector<IndexedShare> subset = {
        {0, shares[0]}, {2, shares[2]}, {4, shares[4]}};
    auto r = ctx.Reconstruct(subset);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().value(), secret.value());
  }
}

TEST(Shamir, EveryKSubsetReconstructs) {
  Rng rng(3);
  const SharingContext ctx = MakeCtx(5, 2);
  const Fp61 secret = Fp61::FromU64(123456789);
  const auto shares = ctx.Split(secret, &rng);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      auto r = ctx.Reconstruct({{i, shares[i]}, {j, shares[j]}});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().value(), secret.value());
    }
  }
}

TEST(Shamir, FewerThanKSharesUnavailable) {
  Rng rng(4);
  const SharingContext ctx = MakeCtx(4, 3);
  const auto shares = ctx.Split(Fp61::FromU64(7), &rng);
  auto r = ctx.Reconstruct({{0, shares[0]}, {1, shares[1]}});
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(Shamir, ExtraSharesEnableCorruptionDetection) {
  Rng rng(5);
  const SharingContext ctx = MakeCtx(4, 2);
  const auto shares = ctx.Split(Fp61::FromU64(99), &rng);
  // All four consistent: fine.
  std::vector<IndexedShare> all;
  for (size_t i = 0; i < 4; ++i) all.push_back({i, shares[i]});
  EXPECT_TRUE(ctx.Reconstruct(all).ok());
  // Corrupt one share beyond the first k: detected.
  all[3].y += Fp61::FromU64(1);
  EXPECT_TRUE(ctx.Reconstruct(all).status().IsCorruption());
}

TEST(Shamir, DuplicateProviderRejected) {
  Rng rng(6);
  const SharingContext ctx = MakeCtx(3, 2);
  const auto shares = ctx.Split(Fp61::FromU64(7), &rng);
  auto r = ctx.Reconstruct({{1, shares[1]}, {1, shares[1]}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(Shamir, PaperFigure1Example) {
  // Figure 1: n=3, k=2, X = {x1=2, x2=4, x3=1}, salaries {10,20,40,60,80}
  // with polynomials q10(x)=100x+10, q20(x)=5x+20, q40(x)=x+40,
  // q60(x)=2x+60, q80(x)=4x+80. DAS1 stores {210,30,42,64,88}, DAS2
  // {410,40,44,68,96}, DAS3 {110,25,41,62,84}.
  auto ctx_r = SharingContext::Create(
      3, 2, {Fp61::FromU64(2), Fp61::FromU64(4), Fp61::FromU64(1)});
  ASSERT_TRUE(ctx_r.ok());
  const SharingContext& ctx = ctx_r.value();

  const uint64_t salaries[5] = {10, 20, 40, 60, 80};
  const uint64_t slopes[5] = {100, 5, 1, 2, 4};
  const uint64_t das1[5] = {210, 30, 42, 64, 88};
  const uint64_t das2[5] = {410, 40, 44, 68, 96};
  const uint64_t das3[5] = {110, 25, 41, 62, 84};

  for (int i = 0; i < 5; ++i) {
    FpPoly q({Fp61::FromU64(salaries[i]), Fp61::FromU64(slopes[i])});
    EXPECT_EQ(q.Eval(ctx.xs()[0]).value(), das1[i]);
    EXPECT_EQ(q.Eval(ctx.xs()[1]).value(), das2[i]);
    EXPECT_EQ(q.Eval(ctx.xs()[2]).value(), das3[i]);
    // Any 2 of the 3 providers reconstruct the salary.
    auto r = ctx.Reconstruct({{0, Fp61::FromU64(das1[i])},
                              {2, Fp61::FromU64(das3[i])}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().value(), salaries[i]);
  }
}

TEST(Shamir, DeterministicSharesEqualForEqualSecrets) {
  const SharingContext ctx = MakeCtx(4, 3);
  const Prf prf(11, 22);
  const auto s1 = ctx.SplitDeterministic(prf, /*domain=*/1, Fp61::FromU64(500));
  const auto s2 = ctx.SplitDeterministic(prf, 1, Fp61::FromU64(500));
  const auto s3 = ctx.SplitDeterministic(prf, 1, Fp61::FromU64(501));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  // Cross-domain separation: same value, different domain tag.
  const auto other_domain = ctx.SplitDeterministic(prf, 2, Fp61::FromU64(500));
  EXPECT_NE(s1, other_domain);
}

TEST(Shamir, DeterministicSharesReconstruct) {
  const SharingContext ctx = MakeCtx(5, 4);
  const Prf prf(1, 2);
  const Fp61 secret = Fp61::FromU64(31337);
  const auto shares = ctx.SplitDeterministic(prf, 9, secret);
  std::vector<IndexedShare> subset;
  for (size_t i = 0; i < 4; ++i) subset.push_back({i, shares[i]});
  auto r = ctx.Reconstruct(subset);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value(), secret.value());
}

TEST(Shamir, DeterministicShareForMatchesSplit) {
  const SharingContext ctx = MakeCtx(4, 2);
  const Prf prf(5, 9);
  const Fp61 v = Fp61::FromU64(20);
  const auto all = ctx.SplitDeterministic(prf, 3, v);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ctx.DeterministicShareFor(prf, 3, v, i).value(), all[i].value());
  }
}

TEST(Shamir, AdditiveHomomorphismForSum) {
  // Sum of shares at each provider is a share of the sum — the provider-
  // side partial SUM aggregation of Section V.A.
  Rng rng(7);
  const SharingContext ctx = MakeCtx(5, 3);
  const uint64_t values[4] = {10, 25, 31, 7};
  std::vector<Fp61> sums(5);
  for (uint64_t v : values) {
    const auto shares = ctx.Split(Fp61::FromU64(v), &rng);
    for (size_t i = 0; i < 5; ++i) sums[i] += shares[i];
  }
  auto r = ctx.Reconstruct({{1, sums[1]}, {3, sums[3]}, {4, sums[4]}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value(), 73u);
}

TEST(Shamir, KMinusOneSharesAreIndependentOfSecret) {
  // Property check of the information-theoretic claim: for k=2, a single
  // provider's share of secret A and of secret B are identically
  // distributed. We verify a necessary condition: the empirical share
  // distribution at provider 0 is statistically indistinguishable in mean
  // rank between two very different secrets.
  Rng rng(8);
  const SharingContext ctx = MakeCtx(3, 2, /*seed=*/99);
  const int kTrials = 4000;
  int below = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto sa = ctx.Split(Fp61::FromU64(0), &rng);
    const auto sb = ctx.Split(Fp61::FromU64(Fp61::kP - 1), &rng);
    if (sa[0].value() < sb[0].value()) ++below;
  }
  // If shares leaked the secret ordering this would be near 0 or kTrials.
  EXPECT_GT(below, kTrials * 2 / 5);
  EXPECT_LT(below, kTrials * 3 / 5);
}

TEST(Shamir, ZeroSharesRefreshWithoutChangingSecret) {
  Rng rng(9);
  const SharingContext ctx = MakeCtx(4, 2);
  const auto shares = ctx.Split(Fp61::FromU64(777), &rng);
  const auto zeros = ctx.ZeroShares(&rng);
  std::vector<IndexedShare> refreshed;
  for (size_t i = 0; i < 4; ++i) {
    refreshed.push_back({i, shares[i] + zeros[i]});
  }
  auto r = ctx.Reconstruct(refreshed);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value(), 777u);
  // And the refreshed shares differ from the originals.
  EXPECT_NE(refreshed[0].y.value(), shares[0].value());
}

// ---------------------------------------------------------------------------
// Order-preserving scheme (Section IV).
// ---------------------------------------------------------------------------

OrderPreservingScheme MakeOp(int degree, size_t n = 5,
                             int64_t lo = -1000000, int64_t hi = 1000000) {
  const Prf prf(77, 88);
  std::vector<uint32_t> xs;
  for (size_t i = 0; i < n; ++i) xs.push_back(static_cast<uint32_t>(3 + 7 * i));
  auto s = OrderPreservingScheme::Create(prf, OpDomain{lo, hi}, degree, xs);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s).value();
}

TEST(OrderPreserving, CreateValidation) {
  const Prf prf(1, 2);
  EXPECT_FALSE(
      OrderPreservingScheme::Create(prf, {0, 10}, 0, {1, 2}).ok());
  EXPECT_FALSE(
      OrderPreservingScheme::Create(prf, {0, 10}, 4, {1, 2, 3, 4, 5}).ok());
  EXPECT_FALSE(OrderPreservingScheme::Create(prf, {10, 0}, 1, {1, 2}).ok());
  EXPECT_FALSE(OrderPreservingScheme::Create(prf, {0, 10}, 2, {1, 2}).ok());
  EXPECT_FALSE(OrderPreservingScheme::Create(prf, {0, 10}, 1, {1, 1}).ok());
  EXPECT_FALSE(OrderPreservingScheme::Create(prf, {0, 10}, 1, {0, 2}).ok());
  EXPECT_FALSE(OrderPreservingScheme::Create(prf, {0, 10}, 1, {1, 300}).ok());
  EXPECT_TRUE(OrderPreservingScheme::Create(prf, {0, 10}, 3, {1, 2, 3, 4}).ok());
}

class OrderPreservingDegrees : public ::testing::TestWithParam<int> {};

TEST_P(OrderPreservingDegrees, StrictlyMonotonePerProvider) {
  const OrderPreservingScheme scheme = MakeOp(GetParam());
  Rng rng(10);
  for (size_t provider = 0; provider < scheme.n(); ++provider) {
    int64_t prev_v = -1000000;
    auto prev = scheme.Share(prev_v, provider);
    ASSERT_TRUE(prev.ok());
    u128 prev_share = prev.value();
    for (int i = 0; i < 300; ++i) {
      const int64_t v = prev_v + 1 + static_cast<int64_t>(rng.Uniform(5000));
      if (v > 1000000) break;
      auto s = scheme.Share(v, provider);
      ASSERT_TRUE(s.ok());
      EXPECT_GT(s.value(), prev_share) << "degree=" << GetParam();
      prev_v = v;
      prev_share = s.value();
    }
  }
}

TEST_P(OrderPreservingDegrees, ReconstructRoundTrip) {
  const OrderPreservingScheme scheme = MakeOp(GetParam());
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const int64_t v = rng.UniformInt(-1000000, 1000000);
    auto shares = scheme.ShareAll(v);
    ASSERT_TRUE(shares.ok());
    std::vector<IndexedOpShare> subset;
    for (size_t i = 0; i < scheme.threshold(); ++i) {
      subset.push_back({i + (5 - scheme.threshold()), 0});
      subset.back().y = shares.value()[subset.back().provider];
    }
    auto r = scheme.Reconstruct(subset);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), v);
  }
}

TEST_P(OrderPreservingDegrees, DomainBoundaries) {
  const OrderPreservingScheme scheme = MakeOp(GetParam());
  for (int64_t v : {-1000000LL, -999999LL, 0LL, 999999LL, 1000000LL}) {
    auto shares = scheme.ShareAll(v);
    ASSERT_TRUE(shares.ok());
    std::vector<IndexedOpShare> subset;
    for (size_t i = 0; i < scheme.threshold(); ++i) {
      subset.push_back({i, shares.value()[i]});
    }
    auto r = scheme.Reconstruct(subset);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), v);
  }
  EXPECT_TRUE(scheme.Share(1000001, 0).status().IsOutOfRange());
  EXPECT_TRUE(scheme.Share(-1000001, 0).status().IsOutOfRange());
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, OrderPreservingDegrees,
                         ::testing::Values(1, 2, 3));

TEST(OrderPreserving, LargeDomainRoundTrip) {
  // Near the kMaxDomainBits limit: domain of 2^60 values.
  const Prf prf(5, 6);
  const int64_t hi = (1LL << 59) - 1;
  const int64_t lo = -(1LL << 59);
  auto sr = OrderPreservingScheme::Create(prf, {lo, hi}, 3,
                                          {11, 52, 101, 254});
  ASSERT_TRUE(sr.ok());
  const auto& scheme = sr.value();
  Rng rng(12);
  for (int t = 0; t < 50; ++t) {
    const int64_t v = rng.UniformInt(lo, hi);
    auto shares = scheme.ShareAll(v);
    ASSERT_TRUE(shares.ok());
    std::vector<IndexedOpShare> all;
    for (size_t i = 0; i < 4; ++i) all.push_back({i, shares.value()[i]});
    auto r = scheme.Reconstruct(all);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), v);
  }
}

TEST(OrderPreserving, CorruptShareDetected) {
  const OrderPreservingScheme scheme = MakeOp(3);
  auto shares = scheme.ShareAll(12345);
  ASSERT_TRUE(shares.ok());
  std::vector<IndexedOpShare> subset;
  for (size_t i = 0; i < 4; ++i) subset.push_back({i, shares.value()[i]});
  subset[2].y += 1;
  auto r = scheme.Reconstruct(subset);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(OrderPreserving, TooFewSharesUnavailable) {
  const OrderPreservingScheme scheme = MakeOp(3);
  auto shares = scheme.ShareAll(5);
  ASSERT_TRUE(shares.ok());
  std::vector<IndexedOpShare> subset = {{0, shares.value()[0]},
                                        {1, shares.value()[1]},
                                        {2, shares.value()[2]}};
  EXPECT_TRUE(scheme.Reconstruct(subset).status().IsUnavailable());
}

TEST(OrderPreserving, InvertSingleShare) {
  const OrderPreservingScheme scheme = MakeOp(2);
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    const int64_t v = rng.UniformInt(-1000000, 1000000);
    auto s = scheme.Share(v, 3);
    ASSERT_TRUE(s.ok());
    auto back = scheme.InvertSingle(s.value(), 3);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
  // A share no value maps to.
  auto s0 = scheme.Share(0, 0);
  ASSERT_TRUE(s0.ok());
  EXPECT_TRUE(scheme.InvertSingle(s0.value() + 1, 0).status().IsNotFound());
}

TEST(OrderPreserving, EqualValuesShareEqually) {
  const OrderPreservingScheme scheme = MakeOp(3);
  auto a = scheme.Share(42, 1);
  auto b = scheme.Share(42, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(OrderPreserving, DifferentKeysDifferentShares) {
  std::vector<uint32_t> xs = {1, 2, 3, 4};
  auto s1 = OrderPreservingScheme::Create(Prf(1, 1), {0, 1000}, 3, xs);
  auto s2 = OrderPreservingScheme::Create(Prf(2, 2), {0, 1000}, 3, xs);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(s1.value().Share(500, 0).value(), s2.value().Share(500, 0).value());
}

// ---------------------------------------------------------------------------
// The straw-man scheme and its break (Section IV's negative example).
// ---------------------------------------------------------------------------

TEST(Strawman, SharesAreMonotone) {
  auto sm = StrawmanOrderPreserving::Create({0, 100000}, {2, 4, 1, 9},
                                            /*alpha_seed=*/0xABCDEF);
  ASSERT_TRUE(sm.ok());
  u128 prev = 0;
  for (int64_t v = 0; v <= 100000; v += 997) {
    auto s = sm.value().Share(v, 0);
    ASSERT_TRUE(s.ok());
    if (v > 0) {
      EXPECT_GT(s.value(), prev);
    }
    prev = s.value();
  }
}

TEST(Strawman, TwoKnownPairsBreakEverything) {
  auto sm_r = StrawmanOrderPreserving::Create({0, 1000000}, {2, 4, 1, 9},
                                              0x1234567);
  ASSERT_TRUE(sm_r.ok());
  const auto& sm = sm_r.value();
  Rng rng(14);
  // Provider 2's stored column for 200 secret values.
  std::vector<int64_t> values;
  std::vector<u128> column;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.UniformInt(0, 1000000));
    column.push_back(sm.Share(values.back(), 2).value());
  }
  // The adversary learns just two (value, share) pairs...
  auto recovered = sm.Attack(2, {values[0], column[0]},
                             {values[1], column[1]}, column);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // ... and recovers every value exactly.
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(recovered.value()[i], values[i]) << i;
  }
}

// Mounts the two-known-pairs affine attack of the previous test against a
// scheme and returns (exact hits, max absolute error) over `trials` values.
std::pair<int, int64_t> AffineAttack(const OrderPreservingScheme& scheme,
                                     int64_t lo, int64_t hi, int trials,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values;
  std::vector<u128> column;
  for (int i = 0; i < trials; ++i) {
    values.push_back(rng.UniformInt(lo, hi));
    column.push_back(scheme.Share(values.back(), 0).value());
  }
  if (values[0] == values[1]) values[1] = values[0] + 1;
  const i128 w1 = values[0], w2 = values[1];
  const i128 s1 = static_cast<i128>(column[0]);
  const i128 s2 = static_cast<i128>(column[1]);
  const i128 a = (s1 - s2) / (w1 - w2);
  const i128 b = s1 - a * w1;
  int exact = 0;
  int64_t max_err = 0;
  for (size_t i = 2; i < values.size(); ++i) {
    const i128 guess = (static_cast<i128>(column[i]) - b) / a;
    const int64_t err =
        std::abs(static_cast<int64_t>(guess - static_cast<i128>(values[i])));
    if (err == 0) ++exact;
    max_err = std::max(max_err, err);
  }
  return {exact, max_err};
}

TEST(Strawman, PaperSlotsLeakApproximateValues) {
  // Documented finding (EXPERIMENTS.md, E11): the paper's equal-slot
  // construction makes shares approximately affine in the value, so the
  // same two-known-pairs attack that fully breaks the straw-man recovers
  // slotted values to within a tiny additive error. It does NOT achieve
  // the straw-man's guaranteed exact recovery, but the leak is real.
  const OrderPreservingScheme scheme = MakeOp(3, 4, 0, 1000000);
  const auto [exact, max_err] = AffineAttack(scheme, 0, 1000000, 200, 15);
  EXPECT_LT(exact, 198);          // not a total break...
  EXPECT_LE(max_err, 4);          // ...but approximate recovery succeeds.
}

TEST(Strawman, RecursiveModeResistsAffineAttack) {
  // The kRecursive hardening replaces equal slots with binary-descent
  // order-preserving coefficients; the affine fit now misses by a wide
  // margin almost everywhere.
  const Prf prf(77, 88);
  auto s = OrderPreservingScheme::Create(prf, OpDomain{0, 1000000}, 3,
                                         {3, 10, 17, 24},
                                         OpSlotMode::kRecursive);
  ASSERT_TRUE(s.ok());
  const auto [exact, max_err] = AffineAttack(s.value(), 0, 1000000, 200, 15);
  EXPECT_LT(exact, 5);
  EXPECT_GT(max_err, 1000);
}

TEST(OrderPreserving, RecursiveModeRoundTripAndMonotone) {
  const Prf prf(31, 41);
  auto sr = OrderPreservingScheme::Create(prf, OpDomain{-5000, 5000}, 3,
                                          {2, 9, 100, 254},
                                          OpSlotMode::kRecursive);
  ASSERT_TRUE(sr.ok());
  const auto& scheme = sr.value();
  Rng rng(16);
  u128 prev = 0;
  for (int64_t v = -5000; v <= 5000; v += 97) {
    auto sh = scheme.Share(v, 2);
    ASSERT_TRUE(sh.ok());
    if (v > -5000) {
      EXPECT_GT(sh.value(), prev);
    }
    prev = sh.value();
  }
  for (int t = 0; t < 30; ++t) {
    const int64_t v = rng.UniformInt(-5000, 5000);
    auto shares = scheme.ShareAll(v);
    ASSERT_TRUE(shares.ok());
    std::vector<IndexedOpShare> all;
    for (size_t i = 0; i < 4; ++i) all.push_back({i, shares.value()[i]});
    auto r = scheme.Reconstruct(all);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value(), v);
  }
}

// --- Cached-basis reconstruction vs. the interpolation reference ---------
//
// Reconstruct now resolves a cached Lagrange basis per provider subset; the
// pre-cache algorithm interpolated a fresh Newton polynomial through the
// first k shares in input order and Eval-checked the rest. The two must
// agree bit for bit — same values, same statuses, same messages — over
// random thresholds, subsets, orderings and corruptions.

Result<Fp61> ReferenceReconstruct(const SharingContext& ctx,
                                  const std::vector<IndexedShare>& shares) {
  if (shares.size() < ctx.k()) {
    return Status::Unavailable("Reconstruct: fewer than k shares available");
  }
  std::vector<FpPoint> points;
  points.reserve(shares.size());
  for (const IndexedShare& s : shares) {
    if (s.provider >= ctx.n()) {
      return Status::InvalidArgument(
          "Reconstruct: provider index out of range");
    }
    points.push_back(FpPoint{ctx.xs()[s.provider], s.y});
    for (size_t j = 0; j + 1 < points.size(); ++j) {
      if (points[j].x == points.back().x) {
        return Status::InvalidArgument(
            "Reconstruct: duplicate share from one provider");
      }
    }
  }
  std::vector<FpPoint> head(points.begin(),
                            points.begin() + static_cast<long>(ctx.k()));
  SSDB_ASSIGN_OR_RETURN(FpPoly poly, Interpolate(head));
  for (size_t i = ctx.k(); i < points.size(); ++i) {
    if (poly.Eval(points[i].x) != points[i].y) {
      return Status::Corruption(
          "Reconstruct: shares are inconsistent (corrupt or mixed secrets)");
    }
  }
  return poly.Eval(Fp61());
}

TEST(ShamirBasis, MatchesInterpolationReferenceBitForBit) {
  Rng rng(0xBA515);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t n = 2 + rng.Uniform(8);       // 2..9 providers
    const size_t k = 2 + rng.Uniform(n - 1);   // 2..n threshold
    auto created = SharingContext::CreateRandom(n, k, &rng);
    ASSERT_TRUE(created.ok());
    const SharingContext ctx = std::move(created).value();

    const Fp61 secret = Fp61::FromU64(rng.Uniform(Fp61::kP));
    const auto shares = ctx.Split(secret, &rng);

    // Random subset of size k..n in random order.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(idx[i], idx[rng.Uniform(i + 1)]);
    }
    const size_t m = k + rng.Uniform(n - k + 1);
    std::vector<IndexedShare> subset;
    for (size_t i = 0; i < m; ++i) {
      subset.push_back({idx[i], shares[idx[i]]});
    }
    // Half the trials corrupt one share: exactly-k subsets must then agree
    // on the (wrong) value, >k subsets must agree on Corruption.
    if (rng.Uniform(2) == 0) {
      subset[rng.Uniform(m)].y += Fp61::FromU64(1 + rng.Uniform(1000));
    }

    const Result<Fp61> got = ctx.Reconstruct(subset);
    const Result<Fp61> want = ReferenceReconstruct(ctx, subset);
    ASSERT_EQ(got.ok(), want.ok())
        << "trial " << trial << ": " << got.status().ToString() << " vs "
        << want.status().ToString();
    if (got.ok()) {
      EXPECT_EQ(got.value().value(), want.value().value()) << "trial "
                                                           << trial;
    } else {
      EXPECT_EQ(got.status().ToString(), want.status().ToString());
    }

    // The explicit basis path must agree with Reconstruct as well.
    std::vector<size_t> providers;
    std::vector<Fp61> ys;
    for (const IndexedShare& s : subset) {
      providers.push_back(s.provider);
      ys.push_back(s.y);
    }
    auto basis = ctx.GetBasis(providers);
    ASSERT_TRUE(basis.ok());
    const Result<Fp61> via_basis =
        ctx.ReconstructWithBasis(basis.value(), ys);
    ASSERT_EQ(via_basis.ok(), got.ok());
    if (got.ok()) {
      EXPECT_EQ(via_basis.value().value(), got.value().value());
    } else {
      EXPECT_EQ(via_basis.status().ToString(), got.status().ToString());
    }
  }
}

TEST(ShamirBasis, InconsistentOverKSetIsCorruption) {
  Rng rng(0xC0);
  const SharingContext ctx = MakeCtx(5, 2, 71);
  const auto a = ctx.Split(Fp61::FromU64(1111), &rng);
  const auto b = ctx.Split(Fp61::FromU64(2222), &rng);
  // Mixed secrets across >k shares cannot lie on one degree-(k-1) curve.
  auto r = ctx.Reconstruct({{0, a[0]}, {1, a[1]}, {2, b[2]}});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ShamirBasis, DuplicateDetectionStillFires) {
  Rng rng(0xD0);
  // n > 256 exercises the heap-backed provider bitmap fallback.
  auto created = SharingContext::CreateRandom(300, 2, &rng);
  ASSERT_TRUE(created.ok());
  const SharingContext ctx = std::move(created).value();
  const auto shares = ctx.Split(Fp61::FromU64(77), &rng);
  // Duplicate in the extras (past the first k) must be caught too.
  auto r = ctx.Reconstruct({{10, shares[10]}, {299, shares[299]},
                            {10, shares[10]}});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  auto basis = ctx.GetBasis({10, 299, 10});
  EXPECT_FALSE(basis.ok());
}

TEST(ShamirBasis, ThresholdBoundaryAt131) {
  Rng rng(0xE0);
  EXPECT_TRUE(SharingContext::CreateRandom(140, 131, &rng).ok());
  auto bad = SharingContext::CreateRandom(140, 132, &rng);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  // The PRF tweak for coefficient j of domain d is d*131 + j; k = 132
  // would make (d, 131) and (d+1, 0) collide.
  EXPECT_NE(bad.status().ToString().find("131"), std::string::npos);
}

}  // namespace
}  // namespace ssdb
