// Tests for the PIR schemes (Section II.B): correctness, communication
// shape, and single-server privacy properties.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "pir/pir.h"

namespace ssdb {
namespace {

std::vector<uint64_t> MakeDb(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<uint64_t> db(n);
  for (auto& x : db) x = rng.Uniform(Fp61::kP);
  return db;
}

TEST(TrivialPir, FetchesAndChargesWholeDb) {
  const auto db = MakeDb(100);
  TrivialPir pir(db);
  PirStats stats;
  for (size_t i : {0UL, 50UL, 99UL}) {
    auto r = pir.Fetch(i, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), db[i]);
  }
  EXPECT_EQ(stats.bytes_down, 3 * 100 * 8u);
  EXPECT_TRUE(pir.Fetch(100, &stats).status().IsInvalidArgument());
}

TEST(TwoServerXorPir, CorrectOnAllIndices) {
  const auto db = MakeDb(200, 3);
  TwoServerXorPir pir(db);
  Rng rng(4);
  for (size_t i = 0; i < db.size(); ++i) {
    PirStats stats;
    auto r = pir.Fetch(i, &rng, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), db[i]) << i;
  }
}

TEST(TwoServerXorPir, CommunicationIsSqrtN) {
  for (size_t n : {256UL, 1024UL, 4096UL, 16384UL}) {
    TwoServerXorPir pir(MakeDb(n, 5));
    Rng rng(6);
    PirStats stats;
    ASSERT_TRUE(pir.Fetch(n / 2, &rng, &stats).ok());
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    // down = 2 * rows * 8 bytes ~ 16 sqrt(N); up = 2 * cols bits.
    EXPECT_LE(stats.bytes_down, 16 * (sqrt_n + 2));
    EXPECT_GE(stats.bytes_down, 16 * (sqrt_n - 2));
    EXPECT_LT(stats.total_bytes(), n * 8 / 4)
        << "PIR should beat trivial for n=" << n;
  }
}

TEST(TwoServerXorPir, QueriesLookUniformToEachServer) {
  // The masks sent to server 1 for two different target indices must be
  // identically distributed: compare empirical bit frequencies.
  TwoServerXorPir pir(MakeDb(1024, 7));
  // We can't observe masks directly through the API; instead verify the
  // indistinguishability property structurally: the mask for server 1 is
  // rng-random independent of the index by construction, and server 2's
  // mask differs in exactly one bit. Flip detection over many runs would
  // require both masks together — which no single server has.
  SUCCEED();
}

TEST(PolyPir, CorrectAcrossServersCounts) {
  const auto db = MakeDb(500, 8);
  Rng rng(9);
  for (size_t servers : {2UL, 3UL, 4UL, 5UL}) {
    auto pir = PolyPir::Create(db, servers);
    ASSERT_TRUE(pir.ok()) << servers;
    for (size_t trial = 0; trial < 30; ++trial) {
      const size_t idx = rng.Uniform(db.size());
      PirStats stats;
      auto r = pir->Fetch(idx, &rng, &stats);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value(), db[idx]) << "servers=" << servers;
    }
  }
}

TEST(PolyPir, UploadShrinksWithMoreServers) {
  const auto db = MakeDb(10000, 10);
  Rng rng(11);
  uint64_t prev_up = ~0ULL;
  for (size_t servers : {2UL, 3UL, 4UL}) {
    auto pir = PolyPir::Create(db, servers);
    ASSERT_TRUE(pir.ok());
    PirStats stats;
    ASSERT_TRUE(pir->Fetch(1234, &rng, &stats).ok());
    // Per-server upload is d*m field elements with m ~ N^(1/d): the
    // total shrinks sharply as the number of servers grows.
    EXPECT_LT(stats.bytes_up, prev_up);
    prev_up = stats.bytes_up;
  }
}

TEST(PolyPir, RejectsBadInputs) {
  EXPECT_FALSE(PolyPir::Create({}, 3).ok());
  EXPECT_FALSE(PolyPir::Create(MakeDb(10), 1).ok());
  EXPECT_FALSE(PolyPir::Create(MakeDb(10), 9).ok());
  EXPECT_FALSE(PolyPir::Create({Fp61::kP}, 3).ok());  // not a field element
  auto pir = PolyPir::Create(MakeDb(10), 3);
  ASSERT_TRUE(pir.ok());
  Rng rng(1);
  PirStats stats;
  EXPECT_TRUE(pir->Fetch(10, &rng, &stats).status().IsInvalidArgument());
}

TEST(PolyPir, SingleServerViewIsUniform) {
  // Each server sees e(i) + t_j * r with r uniform, so the marginal of any
  // coordinate is uniform regardless of i. Empirical check: the first
  // coordinate of server 1's query, over many runs, has no bias towards
  // 0/1 (the one-hot values) for either of two very different indices.
  const auto db = MakeDb(256, 12);
  auto pir = PolyPir::Create(db, 3);
  ASSERT_TRUE(pir.ok());
  // Structural argument: EvaluateAt is only ever called on e + t*r where r
  // is freshly drawn from the Rng per query. Validate the algebra instead:
  // evaluating the polynomial at the embedding returns the record.
  std::vector<Fp61> e(pir->point_dims());
  const size_t idx = 37;
  size_t rest = idx;
  const size_t d = pir->num_servers() - 1;
  const size_t m = pir->point_dims() / d;
  for (size_t b = 0; b < d; ++b) {
    e[b * m + rest % m] = Fp61::FromCanonical(1);
    rest /= m;
  }
  PirStats stats;
  EXPECT_EQ(pir->EvaluateAt(e, &stats).value(), db[idx]);
}

TEST(WoodruffYekhaninPir, CorrectAcrossServersCounts) {
  const auto db = MakeDb(400, 20);
  Rng rng(21);
  for (size_t servers : {2UL, 3UL}) {
    auto pir = WoodruffYekhaninPir::Create(db, servers);
    ASSERT_TRUE(pir.ok()) << servers;
    EXPECT_EQ(pir->degree(), 2 * servers - 1);
    for (size_t trial = 0; trial < 25; ++trial) {
      const size_t idx = rng.Uniform(db.size());
      PirStats stats;
      auto r = pir->Fetch(idx, &rng, &stats);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r.value(), db[idx]) << "servers=" << servers << " idx=" << idx;
    }
  }
}

TEST(WoodruffYekhaninPir, BeatsPolyPirCommunicationAtSameServerCount) {
  // The whole point of derivative sharing: with k servers, WY needs
  // ~N^{1/(2k-1)} per message where the basic scheme needs ~N^{1/(k-1)}.
  const size_t n = 1 << 16;
  const auto db = MakeDb(n, 22);
  Rng rng(23);
  const size_t k = 3;
  auto wy = WoodruffYekhaninPir::Create(db, k);
  auto poly = PolyPir::Create(db, k);
  ASSERT_TRUE(wy.ok() && poly.ok());
  PirStats wy_stats, poly_stats;
  ASSERT_TRUE(wy->Fetch(n / 2, &rng, &wy_stats).ok());
  ASSERT_TRUE(poly->Fetch(n / 2, &rng, &poly_stats).ok());
  EXPECT_LT(wy_stats.total_bytes(), poly_stats.total_bytes());
  // m: 2^16^(1/5) = 10 vs 2^16^(1/2) = 256 -> a big gap.
  EXPECT_LT(wy_stats.total_bytes() * 4, poly_stats.total_bytes());
}

TEST(WoodruffYekhaninPir, GradientMatchesFiniteDifference) {
  // d/dz_q F at a point must equal (F(point + delta e_q) - F(point)) /
  // delta for a multilinear F (exact in the field for any delta).
  const auto db = MakeDb(50, 24);
  auto pir = WoodruffYekhaninPir::Create(db, 2);
  ASSERT_TRUE(pir.ok());
  Rng rng(25);
  std::vector<Fp61> point(pir->point_dims());
  for (auto& v : point) v = Fp61::FromU64(rng.Uniform(Fp61::kP));
  std::vector<Fp61> grad;
  const Fp61 f0 = pir->EvaluateWithGradient(point, &grad, nullptr);
  const Fp61 delta = Fp61::FromU64(12345);
  auto delta_inv = delta.Inverse();
  ASSERT_TRUE(delta_inv.ok());
  for (size_t q = 0; q < point.size(); q += 7) {
    std::vector<Fp61> shifted = point;
    shifted[q] += delta;
    std::vector<Fp61> unused;
    const Fp61 f1 = pir->EvaluateWithGradient(shifted, &unused, nullptr);
    const Fp61 fd = (f1 - f0) * delta_inv.value();
    EXPECT_EQ(fd.value(), grad[q].value()) << "coordinate " << q;
  }
}

TEST(WoodruffYekhaninPir, RejectsBadInputs) {
  EXPECT_FALSE(WoodruffYekhaninPir::Create({}, 2).ok());
  EXPECT_FALSE(WoodruffYekhaninPir::Create(MakeDb(10), 1).ok());
  EXPECT_FALSE(WoodruffYekhaninPir::Create(MakeDb(10), 6).ok());
  EXPECT_FALSE(WoodruffYekhaninPir::Create({Fp61::kP}, 2).ok());
}

TEST(PirComparison, TrivialBeatsPirOnServerTimeButNotBytes) {
  // Sion & Carbunar's point (reproduced fully in bench_pir): PIR schemes
  // save bytes but cost server computation. Here we pin the byte ordering.
  // N is past the xor/poly crossover (~2^16): poly's O(N^{1/3}) upload
  // beats xor's O(sqrt N) download only once N is large enough.
  const size_t n = 1 << 18;
  const auto db = MakeDb(n, 13);
  Rng rng(14);

  PirStats trivial_stats;
  TrivialPir trivial(db);
  ASSERT_TRUE(trivial.Fetch(7, &trivial_stats).ok());

  PirStats xor_stats;
  TwoServerXorPir xorpir(db);
  ASSERT_TRUE(xorpir.Fetch(7, &rng, &xor_stats).ok());

  PirStats poly_stats;
  auto poly = PolyPir::Create(db, 4);
  ASSERT_TRUE(poly.ok());
  ASSERT_TRUE(poly->Fetch(7, &rng, &poly_stats).ok());

  EXPECT_LT(xor_stats.total_bytes(), trivial_stats.total_bytes());
  EXPECT_LT(poly_stats.total_bytes(), xor_stats.total_bytes());
  // ... while the servers touch the whole database in all PIR schemes.
  EXPECT_GE(xor_stats.server_word_ops, n);
  EXPECT_GE(poly_stats.server_word_ops, n);
}

}  // namespace
}  // namespace ssdb
