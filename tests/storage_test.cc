// Unit and property tests for the provider storage: B+-tree and share
// tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "storage/btree.h"
#include "storage/share_table.h"

namespace ssdb {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Range(0, ~static_cast<u128>(0)).empty());
  u128 k;
  uint64_t v;
  EXPECT_FALSE(tree.MinInRange(0, 100, &k, &v));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTree, InsertAndPointLookup) {
  BPlusTree tree;
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(i * 3, i);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.Equal(300), std::vector<uint64_t>{100});
  EXPECT_TRUE(tree.Equal(301).empty());
}

TEST(BPlusTree, RangeMatchesReferenceModel) {
  // Property test: random inserts/erases mirrored into a std::multimap,
  // then random range scans compared.
  Rng rng(21);
  BPlusTree tree;
  std::multimap<u128, uint64_t> model;
  for (int op = 0; op < 5000; ++op) {
    const u128 key = rng.Uniform(1000);
    const uint64_t value = rng.Uniform(50);
    if (rng.Bernoulli(0.7) || model.empty()) {
      tree.Insert(key, value);
      model.emplace(key, value);
    } else {
      // Erase a random existing entry.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.Uniform(model.size())));
      EXPECT_TRUE(tree.Erase(it->first, it->second));
      model.erase(it);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.CheckInvariants());

  for (int q = 0; q < 200; ++q) {
    u128 lo = rng.Uniform(1000);
    u128 hi = rng.Uniform(1000);
    if (lo > hi) std::swap(lo, hi);
    std::multiset<uint64_t> expect;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      expect.insert(it->second);
    }
    const std::vector<uint64_t> got_v = tree.Range(lo, hi);
    const std::multiset<uint64_t> got(got_v.begin(), got_v.end());
    EXPECT_EQ(got, expect) << "range [" << U128ToString(lo) << ", "
                           << U128ToString(hi) << "]";
  }
}

TEST(BPlusTree, ScanIsKeyOrdered) {
  Rng rng(22);
  BPlusTree tree;
  for (int i = 0; i < 3000; ++i) tree.Insert(rng.Next(), i);
  u128 prev = 0;
  bool first = true;
  tree.Scan(0, ~static_cast<u128>(0), [&](u128 k, uint64_t) {
    if (!first) EXPECT_GE(k, prev);
    prev = k;
    first = false;
    return true;
  });
}

TEST(BPlusTree, DuplicateKeysAllKept) {
  BPlusTree tree;
  for (uint64_t v = 0; v < 200; ++v) tree.Insert(42, v);
  EXPECT_EQ(tree.Equal(42).size(), 200u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Erase specific (key, value) pairs.
  EXPECT_TRUE(tree.Erase(42, 100));
  EXPECT_FALSE(tree.Erase(42, 100));
  EXPECT_EQ(tree.Equal(42).size(), 199u);
}

TEST(BPlusTree, MinMaxCountInRange) {
  BPlusTree tree;
  for (uint64_t i = 10; i <= 100; i += 10) tree.Insert(i, i * 2);
  u128 key;
  uint64_t value;
  ASSERT_TRUE(tree.MinInRange(25, 95, &key, &value));
  EXPECT_EQ(key, static_cast<u128>(30));
  EXPECT_EQ(value, 60u);
  ASSERT_TRUE(tree.MaxInRange(25, 95, &key, &value));
  EXPECT_EQ(key, static_cast<u128>(90));
  EXPECT_EQ(tree.CountInRange(25, 95), 7u);
  EXPECT_FALSE(tree.MinInRange(41, 49, &key, &value));
}

TEST(BPlusTree, U128KeysBeyond64Bits) {
  BPlusTree tree;
  const u128 base = MakeU128(5, 0);
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(base + i, i);
  EXPECT_EQ(tree.Range(base + 10, base + 19).size(), 10u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTree, MoveSemantics) {
  BPlusTree a;
  a.Insert(1, 1);
  a.Insert(2, 2);
  BPlusTree b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  a.Insert(9, 9);
  EXPECT_EQ(a.size(), 1u);
}

// --- ShareTable ---------------------------------------------------------

std::vector<ProviderColumnLayout> TestLayout() {
  // col0: det only; col1: op only; col2: both.
  return {{true, false}, {false, true}, {true, true}};
}

StoredRow MakeRow(uint64_t id, uint64_t det0, u128 op1, uint64_t det2,
                  u128 op2) {
  StoredRow row;
  row.row_id = id;
  row.cells.resize(3);
  row.cells[0].secret = id * 11;
  row.cells[0].det = det0;
  row.cells[1].secret = id * 13;
  row.cells[1].op = op1;
  row.cells[2].secret = id * 17;
  row.cells[2].det = det2;
  row.cells[2].op = op2;
  return row;
}

TEST(ShareTable, InsertGetDelete) {
  ShareTable table(TestLayout());
  ASSERT_TRUE(table.Insert(MakeRow(1, 100, 200, 300, 400)).ok());
  EXPECT_TRUE(table.Insert(MakeRow(1, 0, 0, 0, 0)).IsAlreadyExists());
  auto row = table.Get(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->cells[0].det, 100u);
  ASSERT_TRUE(table.Delete(1).ok());
  EXPECT_TRUE(table.Delete(1).IsNotFound());
  EXPECT_TRUE(table.Get(1).status().IsNotFound());
}

TEST(ShareTable, ExactMatchIndex) {
  ShareTable table(TestLayout());
  ASSERT_TRUE(table.Insert(MakeRow(1, 50, 0, 7, 0)).ok());
  ASSERT_TRUE(table.Insert(MakeRow(2, 50, 0, 8, 0)).ok());
  ASSERT_TRUE(table.Insert(MakeRow(3, 60, 0, 7, 0)).ok());
  auto hits = table.ExactMatch(0, 50);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, (std::vector<uint64_t>{1, 2}));
  // Column without det shares.
  EXPECT_TRUE(table.ExactMatch(1, 50).status().IsNotSupported());
  EXPECT_TRUE(table.ExactMatch(9, 50).status().IsInvalidArgument());
}

TEST(ShareTable, RangeScanAndArgExtremes) {
  ShareTable table(TestLayout());
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table.Insert(MakeRow(i, i, i * 100, i, i * 1000)).ok());
  }
  auto hits = table.RangeScan(1, 250, 750);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);  // 300..700
  auto mn = table.ArgMinInRange(1, 250, 750);
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(*mn, std::vector<uint64_t>{3});
  auto mx = table.ArgMaxInRange(1, 250, 750);
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(*mx, std::vector<uint64_t>{7});
  auto none = table.ArgMinInRange(1, 101, 199);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ShareTable, UpdateReindexes) {
  ShareTable table(TestLayout());
  ASSERT_TRUE(table.Insert(MakeRow(1, 5, 500, 5, 500)).ok());
  StoredRow updated = MakeRow(1, 6, 600, 6, 600);
  ASSERT_TRUE(table.Update(updated).ok());
  EXPECT_TRUE(table.ExactMatch(0, 5)->empty());
  EXPECT_EQ(table.ExactMatch(0, 6)->size(), 1u);
  EXPECT_TRUE(table.RangeScan(1, 500, 500)->empty());
  EXPECT_EQ(table.RangeScan(1, 600, 600)->size(), 1u);
  EXPECT_TRUE(table.Update(MakeRow(99, 0, 0, 0, 0)).IsNotFound());
}

TEST(ShareTable, RowSerdeRoundTrip) {
  const auto layout = TestLayout();
  StoredRow row = MakeRow(42, 1, MakeU128(2, 3), 4, MakeU128(5, 6));
  row.tag = 0xDEADBEEF;
  Buffer buf;
  EncodeStoredRow(row, layout, &buf);
  Decoder dec(buf.AsSlice());
  StoredRow back;
  ASSERT_TRUE(DecodeStoredRow(&dec, layout, &back).ok());
  EXPECT_EQ(back.row_id, 42u);
  EXPECT_EQ(back.tag, 0xDEADBEEFu);
  EXPECT_EQ(back.cells[1].op, MakeU128(2, 3));
  EXPECT_EQ(back.cells[2].det, 4u);
  EXPECT_TRUE(dec.done());
  // Truncated input fails cleanly.
  Decoder short_dec(Slice(buf.data(), buf.size() - 3));
  StoredRow bad;
  EXPECT_TRUE(DecodeStoredRow(&short_dec, layout, &bad).IsCorruption());
}

TEST(ShareTable, RowSerdeFuzzReencodeByteIdentical) {
  // The encoder stages small rows on the stack and the decoder reads one
  // zero-copy raw view; neither may change the wire bytes. Fuzz random
  // layouts (including >15 columns, which exceeds the stack stage and
  // takes the per-field fallback) and assert decode -> re-encode is
  // byte-identical.
  Rng rng(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t columns = 1 + rng.Uniform(20);
    std::vector<ProviderColumnLayout> layout(columns);
    for (auto& col : layout) {
      col.has_det = rng.Bernoulli(0.5);
      col.has_op = rng.Bernoulli(0.5);
    }
    StoredRow row;
    row.row_id = rng.Next();
    row.tag = rng.Next();
    row.cells.resize(columns);
    for (auto& cell : row.cells) {
      cell.secret = rng.Next();
      cell.det = rng.Next();
      cell.op = MakeU128(rng.Next(), rng.Next());
    }
    Buffer wire;
    EncodeStoredRow(row, layout, &wire);
    ASSERT_EQ(wire.size(), StoredRowWireSize(layout));

    Decoder dec(wire.AsSlice());
    StoredRow back;
    ASSERT_TRUE(DecodeStoredRow(&dec, layout, &back).ok());
    EXPECT_TRUE(dec.done());

    Buffer rewire;
    EncodeStoredRow(back, layout, &rewire);
    ASSERT_EQ(rewire.size(), wire.size());
    EXPECT_EQ(memcmp(rewire.data(), wire.data(), wire.size()), 0)
        << "trial " << trial << " columns " << columns;
  }
}

TEST(ShareTable, ArityMismatchRejected) {
  ShareTable table(TestLayout());
  StoredRow row;
  row.row_id = 1;
  row.cells.resize(2);  // wrong arity
  EXPECT_TRUE(table.Insert(row).IsInvalidArgument());
}

}  // namespace
}  // namespace ssdb
