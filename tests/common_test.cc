// Unit tests for the common runtime: Status/Result, Slice, Buffer/Decoder,
// Rng, hashing, wide integers.

#include <gtest/gtest.h>

#include <limits>

#include "common/buffer.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/wide_int.h"

namespace ssdb {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::Corruption("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsCorruption());
  EXPECT_EQ(err.value_or(-1), -1);
}

Status UsesAssignOrReturn(bool fail, int* out) {
  auto provider = [&]() -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 7;
  };
  SSDB_ASSIGN_OR_RETURN(*out, provider());
  return Status::OK();
}

TEST(Result, AssignOrReturnMacro) {
  int v = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, &v).ok());
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(UsesAssignOrReturn(true, &v).IsUnavailable());
}

TEST(Slice, BasicsAndCompare) {
  Slice a("abc");
  Slice b("abd");
  EXPECT_EQ(a.size(), 3u);
  EXPECT_LT(a.compare(b), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(a));
  EXPECT_FALSE(a.starts_with(Slice("abcd")));
  Slice empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.compare(Slice("")), 0);
}

TEST(Buffer, RoundTripAllTypes) {
  Buffer buf;
  buf.PutU8(0xAB);
  buf.PutU16(0xBEEF);
  buf.PutU32(0xDEADBEEF);
  buf.PutU64(0x0123456789ABCDEFULL);
  buf.PutU128(MakeU128(0x1111222233334444ULL, 0x5555666677778888ULL));
  buf.PutI64(-42);
  buf.PutDouble(3.25);
  buf.PutVarint(0);
  buf.PutVarint(127);
  buf.PutVarint(128);
  buf.PutVarint(~0ULL);
  buf.PutLengthPrefixed(Slice("hello"));
  buf.PutBool(true);

  Decoder dec(buf.AsSlice());
  uint8_t u8;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  EXPECT_EQ(u8, 0xAB);
  uint16_t u16;
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  EXPECT_EQ(u16, 0xBEEF);
  uint32_t u32;
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  uint64_t u64;
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  u128 u;
  ASSERT_TRUE(dec.GetU128(&u).ok());
  EXPECT_EQ(U128Hi(u), 0x1111222233334444ULL);
  EXPECT_EQ(U128Lo(u), 0x5555666677778888ULL);
  int64_t i64;
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  EXPECT_EQ(i64, -42);
  double d;
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(d, 3.25);
  for (uint64_t expect : {0ULL, 127ULL, 128ULL, ~0ULL}) {
    uint64_t v;
    ASSERT_TRUE(dec.GetVarint(&v).ok());
    EXPECT_EQ(v, expect);
  }
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixedString(&s).ok());
  EXPECT_EQ(s, "hello");
  bool flag;
  ASSERT_TRUE(dec.GetBool(&flag).ok());
  EXPECT_TRUE(flag);
  EXPECT_TRUE(dec.done());
}

TEST(Buffer, DecoderDetectsTruncation) {
  Buffer buf;
  buf.PutU64(5);
  Decoder dec(Slice(buf.data(), 4));  // cut in half
  uint64_t v;
  EXPECT_TRUE(dec.GetU64(&v).IsCorruption());

  Buffer lp;
  lp.PutVarint(100);  // claims 100 bytes follow; none do
  Decoder dec2(lp.AsSlice());
  Slice out;
  EXPECT_TRUE(dec2.GetLengthPrefixed(&out).IsCorruption());
}

TEST(Buffer, VarintOverflowRejected) {
  // 11 bytes of continuation = too long for 64 bits.
  Buffer buf;
  for (int i = 0; i < 11; ++i) buf.PutU8(0xFF);
  Decoder dec(buf.AsSlice());
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint(&v).IsCorruption());
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, ForkSeedDependsOnlyOnConstructionSeedAndStreamId) {
  // The centralized seed-derivation contract: forking stream S is a pure
  // function of (construction seed, S) — consuming the parent or forking
  // siblings first must not perturb it, and distinct streams/parents must
  // not collide. Multi-stream workloads (one stream per tenant) rely on
  // this so adding a tenant never shifts another tenant's stream.
  Rng fresh(123);
  Rng consumed(123);
  for (int i = 0; i < 100; ++i) consumed.Next();
  EXPECT_EQ(fresh.ForkSeed(7), consumed.ForkSeed(7));
  (void)fresh.ForkSeed(1);
  (void)fresh.ForkSeed(2);
  EXPECT_EQ(fresh.ForkSeed(7), consumed.ForkSeed(7));
  EXPECT_NE(fresh.ForkSeed(7), fresh.ForkSeed(8));
  EXPECT_NE(Rng(123).ForkSeed(7), Rng(124).ForkSeed(7));
  // Forked children are the generator seeded with the forked seed.
  Rng child = fresh.Fork(7);
  Rng manual(fresh.ForkSeed(7));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.Next(), manual.Next());
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, Uniform128Bounds) {
  Rng rng(8);
  const u128 bound = MakeU128(3, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform128(bound), bound);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Zipf, SamplesSkewTowardsHead) {
  Rng rng(10);
  Zipf zipf(1000, 0.9);
  int head = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t s = zipf.Sample(&rng);
    ASSERT_LT(s, 1000u);
    if (s < 10) ++head;
  }
  // With theta=0.9 the top-10 of 1000 should collect far more than the
  // uniform 1%.
  EXPECT_GT(head, kTrials / 20);
}

TEST(SipHash, ReferenceVector) {
  // Reference test vector from the SipHash paper (Appendix A):
  // key = 000102...0f, input = 00 01 02 ... 0e (15 bytes).
  SipHashKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0F0E0D0C0B0A0908ULL;
  uint8_t msg[15];
  for (int i = 0; i < 15; ++i) msg[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(SipHash24(key, Slice(msg, sizeof(msg))), 0xA129CA6149BE45E5ULL);
}

TEST(SipHash, KeySeparation) {
  SipHashKey k1{1, 2}, k2{1, 3};
  EXPECT_NE(SipHash24(k1, Slice("x")), SipHash24(k2, Slice("x")));
}

TEST(Fnv1a, KnownValues) {
  EXPECT_EQ(Fnv1a64(Slice("")), 0xCBF29CE484222325ULL);
  EXPECT_NE(Fnv1a64(Slice("a")), Fnv1a64(Slice("b")));
}

TEST(WideInt, U128Formatting) {
  EXPECT_EQ(U128ToString(0), "0");
  EXPECT_EQ(U128ToString(12345), "12345");
  // 2^64 = 18446744073709551616
  EXPECT_EQ(U128ToString(static_cast<u128>(1) << 64), "18446744073709551616");
  EXPECT_EQ(I128ToString(static_cast<i128>(-5)), "-5");
}

TEST(Int256, AddSubNegate) {
  Int256 a(static_cast<int64_t>(100));
  Int256 b(static_cast<int64_t>(-30));
  EXPECT_EQ((a + b).ToString(), "70");
  EXPECT_EQ((a - b).ToString(), "130");
  EXPECT_EQ((-a).ToString(), "-100");
  EXPECT_TRUE((a + (-a)).is_zero());
}

TEST(Int256, Mul128FullProduct) {
  const i128 a = static_cast<i128>(1) << 100;
  const i128 b = 3;
  EXPECT_EQ(Int256::Mul128(a, b).ToString(),
            (Int256::FromU128(static_cast<u128>(1) << 100).MulSmall(3))
                .ToString());
  // (2^100)*(2^20) = 2^120 — still fits i128 for verification.
  Int256 p = Int256::Mul128(static_cast<i128>(1) << 100,
                            static_cast<i128>(1) << 20);
  EXPECT_TRUE(p.FitsInI128());
  EXPECT_EQ(p.ToI128(), static_cast<i128>(1) << 120);
  // Negative signs.
  EXPECT_EQ(Int256::Mul128(-5, 7).ToString(), "-35");
  EXPECT_EQ(Int256::Mul128(-5, -7).ToString(), "35");
}

TEST(Int256, Mul128Beyond128Bits) {
  // (2^100) * (2^100) = 2^200; verify via string of known value.
  Int256 p = Int256::Mul128(static_cast<i128>(1) << 100,
                            static_cast<i128>(1) << 100);
  EXPECT_FALSE(p.FitsInI128());
  // 2^200 = 1606938044258990275541962092341162602522202993782792835301376
  EXPECT_EQ(p.ToString(),
            "1606938044258990275541962092341162602522202993782792835301376");
}

TEST(Int256, DivSmallExactAndInexact) {
  Int256 p = Int256::Mul128(static_cast<i128>(1) << 100, 9);
  bool exact = false;
  Int256 q = p.DivSmall(3, &exact);
  EXPECT_TRUE(exact);
  EXPECT_EQ(q.ToString(), Int256::Mul128(static_cast<i128>(1) << 100, 3).ToString());

  Int256 r = Int256(static_cast<int64_t>(10)).DivSmall(3, &exact);
  EXPECT_FALSE(exact);
  EXPECT_EQ(r.ToString(), "3");

  // Negative division truncates toward zero.
  Int256 neg = Int256(static_cast<int64_t>(-10)).DivSmall(3, &exact);
  EXPECT_FALSE(exact);
  EXPECT_EQ(neg.ToString(), "-3");
}

TEST(Int256, DivByWideDivisor) {
  // Divisor wider than 64 bits exercises the bitwise long-division path.
  const i128 wide = (static_cast<i128>(1) << 90) + 12345;
  Int256 p = Int256::Mul128(wide, (static_cast<i128>(1) << 80) + 7);
  bool exact = false;
  Int256 q = p.DivSmall(wide, &exact);
  EXPECT_TRUE(exact);
  EXPECT_TRUE(q.FitsInI128());
  EXPECT_EQ(q.ToI128(), (static_cast<i128>(1) << 80) + 7);
}

TEST(Int256, CompareOrdering) {
  Int256 a(static_cast<int64_t>(-1));
  Int256 b(static_cast<int64_t>(0));
  Int256 c = Int256::Mul128(static_cast<i128>(1) << 100, 5);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_GT(c, a);
  EXPECT_EQ(a, Int256(static_cast<int64_t>(-1)));
}

}  // namespace
}  // namespace ssdb
