// Unit tests for F_{2^61-1} arithmetic and polynomial machinery.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "field/fp61.h"
#include "field/linalg.h"
#include "field/poly.h"

namespace ssdb {
namespace {

TEST(Fp61, CanonicalReduction) {
  EXPECT_EQ(Fp61::FromU64(0).value(), 0u);
  EXPECT_EQ(Fp61::FromU64(Fp61::kP).value(), 0u);
  EXPECT_EQ(Fp61::FromU64(Fp61::kP + 5).value(), 5u);
  EXPECT_EQ(Fp61::FromU64(~0ULL).value(), (~0ULL % Fp61::kP));
}

TEST(Fp61, AddSubRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Fp61 a = Fp61::FromU64(rng.Next());
    const Fp61 b = Fp61::FromU64(rng.Next());
    EXPECT_EQ((a + b - b).value(), a.value());
    EXPECT_EQ((a - a).value(), 0u);
    EXPECT_EQ((a + (-a)).value(), 0u);
  }
}

TEST(Fp61, MulMatchesWideReference) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Uniform(Fp61::kP);
    const uint64_t b = rng.Uniform(Fp61::kP);
    const u128 ref = static_cast<u128>(a) * b % Fp61::kP;
    EXPECT_EQ((Fp61::FromCanonical(a) * Fp61::FromCanonical(b)).value(),
              static_cast<uint64_t>(ref));
  }
}

TEST(Fp61, InverseIsMultiplicativeInverse) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Fp61 a = Fp61::FromU64(rng.Uniform(Fp61::kP - 1) + 1);
    auto inv = a.Inverse();
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ((a * inv.value()).value(), 1u);
  }
}

TEST(Fp61, InverseOfZeroFails) {
  EXPECT_FALSE(Fp61().Inverse().ok());
}

TEST(Fp61, PowMatchesRepeatedMultiply) {
  const Fp61 base = Fp61::FromU64(123456789);
  Fp61 acc = Fp61::FromCanonical(1);
  for (uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(base.Pow(e).value(), acc.value()) << "e=" << e;
    acc *= base;
  }
}

TEST(FpPoly, EvalHorner) {
  // q(x) = 7 + 3x + 2x^2
  FpPoly q({Fp61::FromU64(7), Fp61::FromU64(3), Fp61::FromU64(2)});
  EXPECT_EQ(q.Eval(Fp61()).value(), 7u);
  EXPECT_EQ(q.Eval(Fp61::FromU64(1)).value(), 12u);
  EXPECT_EQ(q.Eval(Fp61::FromU64(10)).value(), 7u + 30u + 200u);
}

TEST(FpPoly, PaperExamplePolynomials) {
  // Figure 1: q10(x)=100x+10 at X={2,4,1} -> {210, 410, 110}.
  FpPoly q10({Fp61::FromU64(10), Fp61::FromU64(100)});
  EXPECT_EQ(q10.Eval(Fp61::FromU64(2)).value(), 210u);
  EXPECT_EQ(q10.Eval(Fp61::FromU64(4)).value(), 410u);
  EXPECT_EQ(q10.Eval(Fp61::FromU64(1)).value(), 110u);
}

TEST(Lagrange, RecoversConstantTerm) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t k = 1 + rng.Uniform(6);
    std::vector<Fp61> coeffs(k);
    for (auto& c : coeffs) c = Fp61::FromU64(rng.Next());
    FpPoly q(coeffs);
    std::vector<FpPoint> pts;
    for (size_t i = 0; i < k; ++i) {
      const Fp61 x = Fp61::FromU64(i + 1 + rng.Uniform(100) * 7919);
      // ensure distinct
      bool dup = false;
      for (const auto& p : pts) dup |= (p.x == x);
      if (dup) {
        pts.push_back(FpPoint{Fp61::FromU64(1000000 + i), Fp61()});
        pts.back().y = q.Eval(pts.back().x);
        continue;
      }
      pts.push_back(FpPoint{x, q.Eval(x)});
    }
    auto r = LagrangeAtZero(pts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().value(), coeffs[0].value());
  }
}

TEST(Lagrange, RejectsZeroAndDuplicateX) {
  std::vector<FpPoint> with_zero = {{Fp61(), Fp61::FromU64(5)}};
  EXPECT_FALSE(LagrangeAtZero(with_zero).ok());

  std::vector<FpPoint> dup = {{Fp61::FromU64(3), Fp61::FromU64(5)},
                              {Fp61::FromU64(3), Fp61::FromU64(6)}};
  EXPECT_FALSE(LagrangeAtZero(dup).ok());

  EXPECT_FALSE(LagrangeAtZero({}).ok());
}

TEST(Lagrange, BasisMatchesDirect) {
  Rng rng(5);
  std::vector<Fp61> xs = {Fp61::FromU64(2), Fp61::FromU64(4),
                          Fp61::FromU64(9)};
  auto basis = LagrangeBasisAtZero(xs);
  ASSERT_TRUE(basis.ok());
  FpPoly q({Fp61::FromU64(42), Fp61::FromU64(17), Fp61::FromU64(99)});
  Fp61 acc;
  for (size_t i = 0; i < xs.size(); ++i) {
    acc += basis.value()[i] * q.Eval(xs[i]);
  }
  EXPECT_EQ(acc.value(), 42u);
}

TEST(Interpolate, RecoversFullPolynomial) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = 1 + rng.Uniform(5);
    std::vector<Fp61> coeffs(k);
    for (auto& c : coeffs) c = Fp61::FromU64(rng.Next());
    FpPoly q(coeffs);
    std::vector<FpPoint> pts;
    for (size_t i = 0; i < k; ++i) {
      const Fp61 x = Fp61::FromU64(1 + i * 37 + trial);
      pts.push_back(FpPoint{x, q.Eval(x)});
    }
    auto r = Interpolate(pts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().coeffs().size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(r.value().coeffs()[i].value(), coeffs[i].value());
    }
  }
}

TEST(Interpolate, DetectsInconsistencyViaEval) {
  // Interpolate 3 points of a line; a 4th off-line point must not fit.
  FpPoly line({Fp61::FromU64(5), Fp61::FromU64(3)});
  std::vector<FpPoint> pts;
  for (uint64_t x = 1; x <= 3; ++x) {
    pts.push_back({Fp61::FromU64(x), line.Eval(Fp61::FromU64(x))});
  }
  auto r = Interpolate(pts);
  ASSERT_TRUE(r.ok());
  // Degree should collapse: coefficients beyond degree 1 are zero.
  EXPECT_EQ(r.value().coeffs()[2].value(), 0u);
  const Fp61 x4 = Fp61::FromU64(10);
  EXPECT_EQ(r.value().Eval(x4).value(), line.Eval(x4).value());
}

TEST(Linalg, SolvesRandomSystems) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.Uniform(8);
    // Build A and a known solution x; compute b = A x; solve; compare.
    FpMatrix a(n);
    std::vector<Fp61> x(n);
    for (auto& v : x) v = Fp61::FromU64(rng.Next());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a.at(i, j) = Fp61::FromU64(rng.Next());
    }
    std::vector<Fp61> b(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x[j];
    }
    auto solved = SolveLinearSystem(a, b);
    // A random matrix over a 2^61 field is singular with negligible
    // probability.
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(solved.value()[j].value(), x[j].value());
    }
  }
}

TEST(Linalg, DetectsSingularMatrix) {
  FpMatrix a(2);
  a.at(0, 0) = Fp61::FromU64(1);
  a.at(0, 1) = Fp61::FromU64(2);
  a.at(1, 0) = Fp61::FromU64(2);
  a.at(1, 1) = Fp61::FromU64(4);  // row 1 = 2 * row 0
  auto r = SolveLinearSystem(a, {Fp61::FromU64(1), Fp61::FromU64(1)});
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  FpMatrix a(2);
  a.at(0, 0) = Fp61();  // zero pivot forces a row swap
  a.at(0, 1) = Fp61::FromU64(3);
  a.at(1, 0) = Fp61::FromU64(5);
  a.at(1, 1) = Fp61::FromU64(1);
  // x = (2, 7): b0 = 21, b1 = 17.
  auto r = SolveLinearSystem(a, {Fp61::FromU64(21), Fp61::FromU64(17)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].value(), 2u);
  EXPECT_EQ(r.value()[1].value(), 7u);
}

TEST(Linalg, DimensionMismatchRejected) {
  FpMatrix a(2);
  EXPECT_TRUE(SolveLinearSystem(a, {Fp61::FromU64(1)})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ssdb
