// Durability suite (separate executable, CTest label "persistence").
//
// Exercises the StorageEngine layer end to end: WAL append + redo
// replay, periodic checkpoints, torn-tail truncation on reopen, the
// kill/restart chaos drill (a provider dies mid-workload, restarts from
// disk, replays snapshot + WAL, catches up missed writes via batched
// resync envelopes, and rejoins quorums), and cold restarts of a whole
// deployment over an existing storage directory. The headline drill
// asserts bit-identical answers and state fingerprints against a
// fault-free run, across fanout_threads {1, 4, 8}.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "storage/engine.h"

namespace ssdb {
namespace {

constexpr size_t kProviders = 4;
constexpr size_t kThreshold = 2;

/// A fresh per-test storage root under the build's temp dir.
std::string MakeStorageDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("ssdb_persist_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TableSchema EmployeesSchema() {
  TableSchema schema;
  schema.table_name = "Employees";
  schema.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange),
      StringColumn("name", 8),
      IntColumn("salary", 0, 200000),
  };
  return schema;
}

std::vector<std::vector<Value>> EmployeeRows(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  for (size_t i = 0; i < count; ++i) {
    std::string name;
    for (int c = 0; c < 5; ++c) {
      name += static_cast<char>('A' + rng.Uniform(26));
    }
    rows.push_back({Value::Int(static_cast<int64_t>(i)), Value::Str(name),
                    Value::Int(rng.UniformInt(1000, 199000))});
  }
  return rows;
}

std::unique_ptr<OutsourcedDatabase> MakeDurableDb(const std::string& dir,
                                                  size_t fanout_threads = 1,
                                                  size_t snapshot_every = 256) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/kProviders, kThreshold);
  options.fanout_threads = fanout_threads;
  options.storage.backend = StorageOptions::Backend::kDurable;
  options.storage.dir = dir;
  options.storage.wal_snapshot_every = snapshot_every;
  auto db = OutsourcedDatabase::Create(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

DurableEngine& EngineOf(OutsourcedDatabase& db, size_t i) {
  auto* engine = dynamic_cast<DurableEngine*>(&db.provider(i).engine());
  EXPECT_NE(engine, nullptr);
  return *engine;
}

std::string Describe(const QueryResult& r) {
  std::string out;
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + ",";
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& s : rows) out += s + ";";
  out += "|count=" + std::to_string(r.count) +
         " agg=" + std::to_string(r.aggregate_int);
  return out;
}

// --- Engine basics -----------------------------------------------------------

TEST(DurableBackend, RequiresAStorageDirectory) {
  OutsourcedDbOptions options;
  options.storage.backend = StorageOptions::Backend::kDurable;
  auto db = OutsourcedDatabase::Create(std::move(options));
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
}

TEST(DurableBackend, StateSurvivesKillAndRestart) {
  const std::string dir = MakeStorageDir("kill_restart_basic");
  auto db = MakeDurableDb(dir);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->BulkLoad("Employees", EmployeeRows(40, 1)).ok());

  const Query probe = Query::Select("Employees").Where(
      Between("salary", Value::Int(0), Value::Int(200000)));
  auto before = db->Execute(probe);
  ASSERT_TRUE(before.ok());
  const size_t rows_before = db->provider(0).num_rows();
  ASSERT_GT(rows_before, 0u);

  db->faults().Kill(0);
  EXPECT_EQ(db->faults().mode(0), FailureMode::kKill);
  EXPECT_EQ(db->provider(0).num_rows(), 0u) << "kill did not drop RAM state";
  // Reads keep working off the surviving quorum while 0 is dead.
  auto during = db->Execute(probe);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(Describe(*during), Describe(*before));

  ASSERT_TRUE(db->faults().Restart(0).ok());
  EXPECT_EQ(db->faults().mode(0), FailureMode::kHealthy);
  EXPECT_EQ(db->provider(0).num_rows(), rows_before)
      << "restart did not recover the WAL'd rows";
  EXPECT_GT(EngineOf(*db, 0).replayed_records(), 0u);
  auto after = db->Execute(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Describe(*after), Describe(*before));
}

TEST(DurableBackend, WritesDuringOutageReachTheProviderAtRestart) {
  const std::string dir = MakeStorageDir("outage_writes");
  auto db = MakeDurableDb(dir);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->BulkLoad("Employees", EmployeeRows(20, 2)).ok());

  db->faults().Kill(1);
  // Writes succeed on the survivors while provider 1 queues client-side.
  std::vector<std::vector<Value>> extra = {
      {Value::Int(1000), Value::Str("ZELDA"), Value::Int(123456)},
      {Value::Int(1001), Value::Str("YANN"), Value::Int(65432)},
  };
  ASSERT_TRUE(db->Insert("Employees", extra).ok());
  ASSERT_TRUE(
      db->Execute("UPDATE Employees SET salary = 777 WHERE eid = 1000").ok());
  EXPECT_GT(db->client().pending_resync_ops(1), 0u);
  EXPECT_EQ(db->provider(1).num_rows(), 0u);

  ASSERT_TRUE(db->faults().Restart(1).ok());
  EXPECT_EQ(db->client().pending_resync_ops(1), 0u);
  // All providers of the group host the same row ids again.
  EXPECT_EQ(db->provider(1).num_rows(), db->provider(0).num_rows());
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("eid", Value::Int(1000))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][2].ToString(), Value::Int(777).ToString());
  // The catch-up shipped through the recovery series.
  EXPECT_GT(db->metrics()
                .GetCounter("ssdb_recovery_resync_ops_total",
                            {{"provider", "1"}})
                ->value(),
            0u);
}

TEST(DurableBackend, ColdRestartRecoversBitIdenticalProviderState) {
  const std::string dir = MakeStorageDir("cold_restart");
  std::vector<std::string> snapshots(kProviders);
  {
    auto db = MakeDurableDb(dir);
    ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
    ASSERT_TRUE(db->BulkLoad("Employees", EmployeeRows(25, 3)).ok());
    for (size_t i = 0; i < kProviders; ++i) {
      Buffer snap;
      db->provider(i).SaveSnapshot(&snap);
      snapshots[i] = std::string(
          reinterpret_cast<const char*>(snap.AsSlice().data()),
          snap.AsSlice().size());
    }
  }  // deployment torn down; WAL + snapshot files remain on disk
  {
    // A brand-new deployment over the same directory: every provider
    // recovers its exact pre-teardown state from snapshot + WAL replay.
    // (The client-side catalog is per-deployment and out of scope here —
    // provider state is what the durability contract covers.)
    auto db = MakeDurableDb(dir);
    for (size_t i = 0; i < kProviders; ++i) {
      EXPECT_EQ(db->provider(i).num_tables(), 1u);
      EXPECT_EQ(db->provider(i).num_rows(), 25u);
      Buffer snap;
      db->provider(i).SaveSnapshot(&snap);
      const std::string recovered(
          reinterpret_cast<const char*>(snap.AsSlice().data()),
          snap.AsSlice().size());
      EXPECT_EQ(recovered, snapshots[i])
          << "provider " << i << " state drifted across the cold restart";
    }
  }
}

TEST(DurableBackend, CheckpointSnapshotsAndTruncatesTheWal) {
  const std::string dir = MakeStorageDir("checkpoint");
  auto db = MakeDurableDb(dir, /*fanout_threads=*/1, /*snapshot_every=*/4);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  const auto rows = EmployeeRows(12, 4);
  for (const auto& row : rows) {
    ASSERT_TRUE(db->Insert("Employees", {row}).ok());
  }
  DurableEngine& engine = EngineOf(*db, 0);
  EXPECT_GT(engine.checkpoints(), 0u);
  EXPECT_LT(engine.wal_records(), 1u + rows.size());
  EXPECT_TRUE(std::filesystem::exists(engine.snapshot_path()));

  // Recovery = snapshot + WAL suffix: kill/restart reproduces all rows.
  const size_t rows_before = db->provider(0).num_rows();
  db->faults().Kill(0);
  ASSERT_TRUE(db->faults().Restart(0).ok());
  EXPECT_EQ(db->provider(0).num_rows(), rows_before);
  EXPECT_EQ(db->metrics()
                .GetCounter("ssdb_wal_checkpoints_total", {{"provider", "0"}})
                ->value(),
            engine.checkpoints());
}

TEST(DurableBackend, TornWalTailIsTruncatedOnReopen) {
  const std::string dir = MakeStorageDir("torn_tail");
  // No periodic checkpoints: every mutation stays in the WAL.
  auto db = MakeDurableDb(dir, /*fanout_threads=*/1, /*snapshot_every=*/0);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->BulkLoad("Employees", EmployeeRows(10, 5)).ok());
  const size_t rows_before = db->provider(2).num_rows();
  DurableEngine& engine = EngineOf(*db, 2);
  const uint64_t intact_records = engine.wal_records();

  // Simulate a crash mid-append: a torn, garbage tail after the last
  // intact record.
  db->faults().Kill(2);
  {
    FILE* f = std::fopen(engine.wal_path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0x17, 0xDE, 0xAD, 0xBE};
    ASSERT_EQ(std::fwrite(garbage, 1, sizeof(garbage), f), sizeof(garbage));
    std::fclose(f);
  }
  ASSERT_TRUE(db->faults().Restart(2).ok());
  EXPECT_EQ(engine.truncated_bytes(), 4u);
  EXPECT_EQ(engine.replayed_records(), intact_records);
  EXPECT_EQ(db->provider(2).num_rows(), rows_before)
      << "torn tail corrupted the intact prefix";
  EXPECT_EQ(db->metrics()
                .GetCounter("ssdb_recovery_truncated_bytes_total",
                            {{"provider", "2"}})
                ->value(),
            4u);

  // A second reopen sees a clean log: nothing further to truncate.
  db->faults().Kill(2);
  ASSERT_TRUE(db->faults().Restart(2).ok());
  EXPECT_EQ(engine.truncated_bytes(), 0u);
  EXPECT_EQ(db->provider(2).num_rows(), rows_before);
}

TEST(MemoryBackend, RestartRecoversOnlyWritesMissedDuringTheOutage) {
  // The documented MemoryEngine kill semantics: nothing is durable, so a
  // restarted provider holds exactly the writes it missed during the
  // outage (the client-side catch-up queue) and nothing else. (The seed
  // deployment is unchanged unless Kill is used.)
  OutsourcedDbOptions options;
  options.topology = Topology(1, kProviders, kThreshold);
  options.fanout_threads = 1;
  auto db_r = OutsourcedDatabase::Create(std::move(options));
  ASSERT_TRUE(db_r.ok());
  auto& db = *db_r.value();

  // Killed before any schema exists: the whole workload lands in the
  // catch-up queue, so the restart rebuilds everything via resync.
  db.faults().Kill(3);
  ASSERT_TRUE(db.CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db.BulkLoad("Employees", EmployeeRows(10, 6)).ok());
  EXPECT_EQ(db.provider(3).num_rows(), 0u);
  EXPECT_GT(db.client().pending_resync_ops(3), 0u);
  ASSERT_TRUE(db.faults().Restart(3).ok());
  EXPECT_EQ(db.provider(3).num_rows(), 10u);
  EXPECT_EQ(db.provider(3).num_tables(), 1u);

  // A second kill with no writes during the outage loses the state for
  // good: nothing durable, nothing queued.
  db.faults().Kill(3);
  ASSERT_TRUE(db.faults().Restart(3).ok());
  EXPECT_EQ(db.provider(3).num_rows(), 0u);
  EXPECT_EQ(db.provider(0).num_rows(), 10u);
  // Reads still answer from the surviving quorum.
  auto r = db.Execute(Query::Select("Employees"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 10u);
}

// --- The kill/restart chaos drill -------------------------------------------

struct DrillRun {
  std::vector<std::string> answers;  ///< Per-step query serialization.
  std::string state;                 ///< Final full-scan + provider rows.
};

/// A mixed read/write workload; when `kill` is set, provider `victim` is
/// killed a third of the way in and restarted two thirds in, so writes
/// land before death, during the outage, and after recovery.
DrillRun RunDrill(const std::string& dir, bool kill, size_t fanout_threads) {
  DrillRun run;
  const size_t victim = 1;
  auto db = MakeDurableDb(dir, fanout_threads, /*snapshot_every=*/8);
  EXPECT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  EXPECT_TRUE(db->BulkLoad("Employees", EmployeeRows(60, 7)).ok());

  Rng rng(0xD127);
  constexpr int kSteps = 30;
  for (int step = 0; step < kSteps; ++step) {
    if (kill && step == kSteps / 3) db->faults().Kill(victim);
    if (kill && step == 2 * kSteps / 3) {
      EXPECT_TRUE(db->faults().Restart(victim).ok());
    }
    const int64_t a = rng.UniformInt(0, 180000);
    const int64_t b = a + rng.UniformInt(2000, 50000);
    const int64_t eid = rng.UniformInt(0, 70);
    switch (step % 5) {
      case 0: {  // insert
        auto st = db->Insert(
            "Employees",
            {{Value::Int(2000 + step), Value::Str("NEW"), Value::Int(a)}});
        EXPECT_TRUE(st.ok()) << st.ToString();
        run.answers.push_back("insert:" + std::to_string(step));
        break;
      }
      case 1: {  // update through SQL
        auto r = db->Execute("UPDATE Employees SET salary = " +
                             std::to_string(a % 199999) + " WHERE eid = " +
                             std::to_string(eid));
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        run.answers.push_back("update:" + std::to_string(r.ok() ? r->count
                                                                : ~0ull));
        break;
      }
      case 2: {  // range scan
        auto r = db->Execute(Query::Select("Employees").Where(
            Between("salary", Value::Int(a), Value::Int(b))));
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        run.answers.push_back(r.ok() ? Describe(*r) : "ERR");
        break;
      }
      case 3: {  // aggregate
        auto r = db->Execute(Query::Select("Employees")
                                 .Where(Between("salary", Value::Int(a),
                                                Value::Int(b)))
                                 .Aggregate(AggregateOp::kSum, "salary"));
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        run.answers.push_back(r.ok() ? Describe(*r) : "ERR");
        break;
      }
      default: {  // delete a row that may or may not exist
        auto r = db->Execute("DELETE FROM Employees WHERE eid = " +
                             std::to_string(1000 + step));
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        run.answers.push_back("delete:" + std::to_string(r.ok() ? r->count
                                                                : ~0ull));
        break;
      }
    }
  }

  // Final state fingerprint: full scan + per-provider row counts (the
  // restarted provider must be indistinguishable from the survivors).
  auto full = db->Execute(Query::Select("Employees"));
  EXPECT_TRUE(full.ok()) << full.status().ToString();
  run.state = full.ok() ? Describe(*full) : "ERR";
  for (size_t i = 0; i < kProviders; ++i) {
    run.state += "|p" + std::to_string(i) + "=" +
                 std::to_string(db->provider(i).num_rows());
  }
  if (kill) {
    EXPECT_EQ(db->client().pending_resync_ops(victim), 0u);
    EXPECT_GT(db->metrics()
                  .GetCounter("ssdb_recovery_restarts_total",
                              {{"provider", std::to_string(victim)}})
                  ->value(),
              0u);
  }
  return run;
}

TEST(KillRestartChaos, DrillMatchesFaultFreeRunAcrossFanoutThreads) {
  const DrillRun baseline =
      RunDrill(MakeStorageDir("drill_baseline"), /*kill=*/false, 1);
  ASSERT_FALSE(baseline.answers.empty());

  for (size_t fanout : {1u, 4u, 8u}) {
    SCOPED_TRACE("fanout=" + std::to_string(fanout));
    const DrillRun chaos = RunDrill(
        MakeStorageDir("drill_kill_f" + std::to_string(fanout)), /*kill=*/true,
        fanout);
    // Every answer — before, during and after the outage — matches the
    // fault-free run: reads reconstruct from the surviving quorum, and
    // the recovered provider returns bit-identical shares.
    ASSERT_EQ(chaos.answers.size(), baseline.answers.size());
    for (size_t i = 0; i < baseline.answers.size(); ++i) {
      EXPECT_EQ(chaos.answers[i], baseline.answers[i]) << "step " << i;
    }
    EXPECT_EQ(chaos.state, baseline.state);
  }
}

}  // namespace
}  // namespace ssdb
