// Traffic suite (separate executable, CTest label "traffic").
//
// Exercises the open-loop multi-tenant harness end to end: bit-identical
// SLO percentile exports across fan-out thread counts and same-seed
// runs, open-loop queueing delay growth past the service rate, the
// KneeFinder sweep, deterministic per-tenant admission rejections (queue
// depth and token-bucket quota), conservation properties reconciled
// against the metrics registry and ChannelStats, per-tenant stream
// stability under tenant-set changes, and a kill/restart drill
// mid-traffic over durable storage whose surviving tenants must answer
// exactly like a fault-free run.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "traffic/knee.h"
#include "traffic/traffic.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t fanout_threads = 1,
                                           size_t shards = 1) {
  OutsourcedDbOptions options;
  options.topology = Topology(shards, /*n_per=*/4, /*k=*/2);
  options.fanout_threads = fanout_threads;
  auto db = OutsourcedDatabase::Create(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Two small tenants with the default read-heavy mix.
std::vector<TenantSpec> TwoTenants(double qps = 40.0) {
  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "alpha";
  tenants[0].rows = 32;
  tenants[0].requests = 30;
  tenants[0].arrival_qps = qps;
  tenants[1].name = "beta";
  tenants[1].rows = 24;
  tenants[1].requests = 30;
  tenants[1].arrival_qps = qps;
  return tenants;
}

/// Only the ssdb_traffic_* / ssdb_admission_* lines of the Prometheus
/// export: the series this harness owns, compared byte for byte.
std::string TrafficSeries(OutsourcedDatabase* db) {
  std::istringstream in(db->metrics().ExportPrometheus());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("ssdb_traffic_") != std::string::npos ||
        line.find("ssdb_admission_") != std::string::npos) {
      out << line << "\n";
    }
  }
  return out.str();
}

Result<TrafficReport> RunOnce(OutsourcedDatabase* db,
                              std::vector<TenantSpec> tenants,
                              TrafficOptions options = {}) {
  TrafficHarness harness(db, std::move(tenants), options);
  Status setup = harness.Setup();
  if (!setup.ok()) return setup;
  return harness.Run();
}

TEST(TrafficDeterminism, ExportsBitIdenticalAcrossFanoutThreadCounts) {
  std::string first_json;
  std::string first_series;
  for (size_t threads : {1, 4, 8}) {
    auto db = MakeDb(threads);
    auto report = RunOnce(db.get(), TwoTenants());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report.value().global.completed, 0u);
    const std::string json = report.value().ExportJson();
    const std::string series = TrafficSeries(db.get());
    if (first_json.empty()) {
      first_json = json;
      first_series = series;
      EXPECT_NE(first_series.find("ssdb_traffic_latency_us"),
                std::string::npos);
    } else {
      EXPECT_EQ(json, first_json) << "fanout_threads=" << threads;
      EXPECT_EQ(series, first_series) << "fanout_threads=" << threads;
    }
  }
}

TEST(TrafficDeterminism, ExportsBitIdenticalAcrossSameSeedRuns) {
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  auto r1 = RunOnce(db1.get(), TwoTenants());
  auto r2 = RunOnce(db2.get(), TwoTenants());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().ExportJson(), r2.value().ExportJson());
  EXPECT_EQ(TrafficSeries(db1.get()), TrafficSeries(db2.get()));
}

TEST(TrafficDeterminism, BatchingKeepsAnswersAndCountsChangesOnlyService) {
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  TrafficOptions batched;
  batched.exec_batch = true;
  TrafficOptions sequential;
  sequential.exec_batch = false;
  auto r1 = RunOnce(db1.get(), TwoTenants(), batched);
  auto r2 = RunOnce(db2.get(), TwoTenants(), sequential);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Answers and admission accounting are mode-independent; service
  // charges are not — waves amortize envelope rounds, so the batched
  // run's total latency can only be lower.
  ASSERT_EQ(r1.value().tenants.size(), r2.value().tenants.size());
  for (size_t t = 0; t < r1.value().tenants.size(); ++t) {
    const TenantTraffic& a = r1.value().tenants[t];
    const TenantTraffic& b = r2.value().tenants[t];
    EXPECT_EQ(a.answers_fingerprint, b.answers_fingerprint) << a.tenant;
    EXPECT_EQ(a.offered, b.offered) << a.tenant;
    EXPECT_EQ(a.completed, b.completed) << a.tenant;
    EXPECT_EQ(a.failed, b.failed) << a.tenant;
    EXPECT_EQ(a.rejected(), b.rejected()) << a.tenant;
  }
  EXPECT_EQ(r1.value().global.answers_fingerprint,
            r2.value().global.answers_fingerprint);
  EXPECT_LE(r1.value().global.latency_sum_us,
            r2.value().global.latency_sum_us);
}

TEST(TrafficOpenLoop, QueueingDelayGrowsPastServiceRate) {
  auto slow = MakeDb();
  auto fast = MakeDb();
  // 4 qps offered is far below capacity; 400 qps is far above it (mean
  // service is tens of simulated milliseconds per request).
  auto light = RunOnce(slow.get(), TwoTenants(/*qps=*/4.0));
  auto heavy = RunOnce(fast.get(), TwoTenants(/*qps=*/400.0));
  ASSERT_TRUE(light.ok() && heavy.ok());
  EXPECT_GT(heavy.value().global.queue_delay_p99_us,
            10 * std::max<uint64_t>(1, light.value().global.queue_delay_p99_us));
  EXPECT_GT(heavy.value().global.p99_us, light.value().global.p99_us);
  // The open loop charges latency from the SCHEDULED arrival: under
  // overload the backlog (and so p99) must exceed the pure service time.
  EXPECT_GT(heavy.value().global.p99_us, heavy.value().global.service_p50_us);
}

TEST(TrafficKnee, SweepLocatesSaturationForFlatAndShardedTopologies) {
  for (size_t shards : {1, 4}) {
    DeploymentFactory factory =
        [shards]() -> Result<std::unique_ptr<OutsourcedDatabase>> {
      OutsourcedDbOptions options;
      options.topology = Topology(shards, /*n_per=*/4, /*k=*/2);
      return OutsourcedDatabase::Create(std::move(options));
    };
    std::vector<TenantSpec> tenants = TwoTenants(/*qps=*/30.0);
    KneeSweepOptions sweep;
    sweep.rate_scales = {0.25, 1.0, 4.0, 16.0};
    auto report = KneeFinder::Sweep(factory, tenants, TrafficOptions{}, sweep);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().found) << "shards=" << shards;
    EXPECT_GT(report.value().knee_qps, 0.0);
    EXPECT_GT(report.value().pre_knee_p99_us, 0u);
    // The sweep must straddle the knee: light points flat, heavy points
    // saturated.
    EXPECT_FALSE(report.value().points.front().saturated);
    EXPECT_TRUE(report.value().points.back().saturated);
  }
}

TEST(TrafficAdmission, QueueDepthRejectsDeterministicallyPerTenant) {
  std::vector<uint64_t> fingerprints;
  std::vector<uint64_t> rejected;
  for (int run = 0; run < 2; ++run) {
    auto db = MakeDb();
    std::vector<TenantSpec> tenants = TwoTenants(/*qps=*/400.0);
    tenants[0].max_queue_depth = 2;  // alpha is depth-limited, beta is not
    auto report = RunOnce(db.get(), tenants);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const TenantTraffic& alpha = report.value().tenants[0];
    const TenantTraffic& beta = report.value().tenants[1];
    EXPECT_GT(alpha.rejected_queue, 0u);
    EXPECT_EQ(alpha.rejected_quota, 0u);
    EXPECT_EQ(beta.rejected(), 0u);
    EXPECT_EQ(alpha.offered,
              alpha.admitted + alpha.rejected_queue + alpha.rejected_quota);
    // The registry's per-reason series must agree with the report.
    EXPECT_EQ(db->metrics().CounterValue(
                  "ssdb_admission_rejected_total",
                  {{"tenant", "alpha"}, {"reason", "queue_depth"}}),
              alpha.rejected_queue);
    fingerprints.push_back(alpha.answers_fingerprint);
    rejected.push_back(alpha.rejected_queue);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(rejected[0], rejected[1]);
}

TEST(TrafficAdmission, QuotaRejectsDeterministicallyAndSkipsExecution) {
  std::vector<uint64_t> rejected;
  for (int run = 0; run < 2; ++run) {
    auto db = MakeDb();
    std::vector<TenantSpec> tenants = TwoTenants(/*qps=*/100.0);
    // alpha writes only, under a tight quota: every rejected insert must
    // leave no trace in the table.
    tenants[0].mix = TenantOpMix{0, 0, 0, 0, 1.0, 0};
    tenants[0].quota_qps = 10.0;
    tenants[0].quota_burst = 1.0;
    auto report = RunOnce(db.get(), tenants);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const TenantTraffic& alpha = report.value().tenants[0];
    EXPECT_GT(alpha.rejected_quota, 0u);
    EXPECT_EQ(alpha.rejected_queue, 0u);
    EXPECT_EQ(db->metrics().CounterValue(
                  "ssdb_admission_rejected_total",
                  {{"tenant", "alpha"}, {"reason", "quota"}}),
              alpha.rejected_quota);
    // Rejected inserts never executed: row count is preload + completed.
    auto count = db->Execute(
        Query::Select("alpha").Aggregate(AggregateOp::kCount));
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(static_cast<uint64_t>(count.value().aggregate_int),
              tenants[0].rows + alpha.completed);
    rejected.push_back(alpha.rejected_quota);
  }
  EXPECT_EQ(rejected[0], rejected[1]);
}

TEST(TrafficProperty, ConservationAndHistogramReconciliation) {
  auto db = MakeDb();
  std::vector<TenantSpec> tenants = TwoTenants(/*qps=*/200.0);
  tenants[0].max_queue_depth = 3;
  tenants[1].quota_qps = 40.0;
  db->ResetAllStats();
  TrafficOptions options;
  options.exec_batch = false;  // every request is its own envelope round
  auto report = RunOnce(db.get(), tenants, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const TrafficReport& r = report.value();

  // At drain nothing is in flight: every offered request is accounted
  // for, per tenant and globally, and the global row is the tenant sum.
  uint64_t offered_sum = 0, completed_sum = 0, failed_sum = 0, rejected_sum = 0;
  for (const TenantTraffic& t : r.tenants) {
    EXPECT_EQ(t.offered, t.completed + t.failed + t.rejected()) << t.tenant;
    EXPECT_EQ(t.admitted, t.completed + t.failed) << t.tenant;
    offered_sum += t.offered;
    completed_sum += t.completed;
    failed_sum += t.failed;
    rejected_sum += t.rejected();
  }
  EXPECT_EQ(r.global.offered, offered_sum);
  EXPECT_EQ(r.global.completed, completed_sum);
  EXPECT_EQ(r.global.failed, failed_sum);
  EXPECT_EQ(r.global.rejected(), rejected_sum);

  // Histogram counts reconcile: each completed request observes exactly
  // once per histogram, per tenant and again under "_all", so the
  // registry-wide totals are exactly twice the completed count...
  MetricsRegistry& reg = db->metrics();
  uint64_t latency_count = 0;
  for (const TenantTraffic& t : r.tenants) {
    latency_count +=
        reg.GetHistogram("ssdb_traffic_latency_us", {{"tenant", t.tenant}})
            ->count();
  }
  EXPECT_EQ(latency_count, completed_sum);
  EXPECT_EQ(
      reg.GetHistogram("ssdb_traffic_latency_us", {{"tenant", "_all"}})->count(),
      completed_sum);
  // ...and the label-filtered CounterTotal reads one stratum at a time:
  // the "_all" aggregate equals the logical total, per-tenant series sum
  // to the same figure, and the unfiltered overload (which sums BOTH
  // strata) is exactly double — never use it as a logical total on
  // metrics that keep a tenant="_all" aggregate.
  EXPECT_EQ(reg.CounterTotal("ssdb_traffic_completed_total", "tenant", "_all"),
            completed_sum);
  EXPECT_EQ(reg.CounterTotal("ssdb_traffic_offered_total", "tenant", "_all"),
            offered_sum);
  uint64_t per_tenant_completed = 0;
  for (const TenantTraffic& t : r.tenants) {
    per_tenant_completed +=
        reg.CounterValue("ssdb_traffic_completed_total", {{"tenant", t.tenant}});
  }
  EXPECT_EQ(per_tenant_completed, completed_sum);
  EXPECT_EQ(reg.CounterTotal("ssdb_traffic_completed_total"),
            2 * completed_sum);
  EXPECT_EQ(reg.CounterTotal("ssdb_traffic_offered_total"), 2 * offered_sum);

  // ...and against the wire: every executed request crossed the network
  // (>= threshold legs for reads, every provider for writes), while
  // rejected requests never did. Stats were reset after Setup, so calls
  // here belong to Run alone.
  const uint64_t executed = completed_sum + failed_sum;
  EXPECT_GE(db->network_stats().calls, 2 * executed);
  EXPECT_GT(executed, 0u);
}

TEST(TrafficStreams, TenantStreamsAreStableUnderTenantSetChanges) {
  std::vector<TenantSpec> two = TwoTenants();
  std::vector<TenantSpec> three = two;
  TenantSpec extra;
  extra.name = "gamma";
  extra.rows = 16;
  extra.requests = 20;
  extra.arrival_qps = 80.0;
  three.push_back(extra);
  std::vector<TenantSpec> swapped = {two[1], two[0]};

  constexpr uint64_t kSeed = 42;
  auto schedule_of = [&](const std::vector<TenantSpec>& tenants,
                         const std::string& name) {
    std::vector<TrafficRequest> out;
    size_t index = 0;
    for (size_t i = 0; i < tenants.size(); ++i) {
      if (tenants[i].name == name) index = i;
    }
    for (const TrafficRequest& req : BuildTrafficSchedule(tenants, kSeed)) {
      if (req.tenant == index) out.push_back(req);
    }
    return out;
  };
  for (const std::string name : {"alpha", "beta"}) {
    const auto base = schedule_of(two, name);
    ASSERT_FALSE(base.empty());
    for (const auto* variant : {&three, &swapped}) {
      const auto other = schedule_of(*variant, name);
      ASSERT_EQ(base.size(), other.size()) << name;
      for (size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].arrival_us, other[i].arrival_us) << name;
        EXPECT_EQ(base[i].op, other[i].op) << name;
        EXPECT_EQ(base[i].key, other[i].key) << name;
        EXPECT_EQ(base[i].a, other[i].a) << name;
        EXPECT_EQ(base[i].b, other[i].b) << name;
        EXPECT_EQ(base[i].seq, other[i].seq) << name;
      }
    }
  }
}

TEST(TrafficDrill, KillRestartMidTrafficMatchesFaultFreeAnswers) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ssdb_traffic_drill").string();
  std::filesystem::remove_all(dir);
  auto make_durable = [&](const std::string& sub) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    options.fanout_threads = 1;
    options.storage.backend = StorageOptions::Backend::kDurable;
    options.storage.dir = dir + "/" + sub;
    auto db = OutsourcedDatabase::Create(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };

  TrafficOptions options;
  options.exec_batch = false;  // match the drill's forced sequential path

  auto baseline_db = make_durable("baseline");
  auto baseline = RunOnce(baseline_db.get(), TwoTenants(), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline.value().global.failed, 0u);

  // Drill: provider 1 dies a third of the way in and comes back two
  // thirds in; with k=2 of n=4 every read still reconstructs and writes
  // queue client-side until the restart resyncs them.
  auto drill_db = make_durable("drill");
  OutsourcedDatabase* raw = drill_db.get();
  const size_t total = baseline.value().global.admitted;
  TrafficOptions drill_options = options;
  drill_options.before_request = [raw, total](size_t index) {
    if (index == total / 3) {
      raw->faults().Kill(1);
    } else if (index == 2 * total / 3) {
      Status restarted = raw->faults().Restart(1);
      EXPECT_TRUE(restarted.ok()) << restarted.ToString();
    }
  };
  auto drill = RunOnce(raw, TwoTenants(), drill_options);
  ASSERT_TRUE(drill.ok()) << drill.status().ToString();

  // Every tenant survives the drill with bit-identical answers; latency
  // figures may shift (re-planned reads cost different legs), answers
  // must not.
  EXPECT_EQ(drill.value().global.failed, 0u);
  EXPECT_EQ(drill.value().global.completed, baseline.value().global.completed);
  for (size_t t = 0; t < baseline.value().tenants.size(); ++t) {
    EXPECT_EQ(drill.value().tenants[t].answers_fingerprint,
              baseline.value().tenants[t].answers_fingerprint)
        << baseline.value().tenants[t].tenant;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ssdb
