// Direct provider-protocol tests: wire-format robustness and provider
// semantics independent of the client.

#include <gtest/gtest.h>

#include "provider/protocol.h"
#include "provider/provider.h"

namespace ssdb {
namespace {

std::vector<ProviderColumnLayout> Layout2() {
  return {{true, true}, {true, false}};
}

StoredRow Row(uint64_t id, uint64_t det0, u128 op0, uint64_t det1) {
  StoredRow row;
  row.row_id = id;
  row.cells.resize(2);
  row.cells[0].det = det0;
  row.cells[0].op = op0;
  row.cells[0].secret = id + 1000;
  row.cells[1].det = det1;
  row.cells[1].secret = id + 2000;
  return row;
}

Result<Buffer> Call(Provider* p, const Buffer& req) {
  return p->Handle(req.AsSlice());
}

Status OkHeader(const Buffer& resp) {
  Decoder dec(resp.AsSlice());
  return DecodeResponseHeader(&dec);
}

void SetupTables(Provider* p) {
  Buffer create;
  EncodeCreateTable(7, Layout2(), &create);
  auto r = Call(p, create);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(OkHeader(*r).ok());
  Buffer insert;
  EncodeInsertRows(7, Layout2(),
                   {Row(1, 10, 100, 55), Row(2, 20, 200, 55),
                    Row(3, 10, 300, 66)},
                   &insert);
  r = Call(p, insert);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(OkHeader(*r).ok());
}

TEST(Provider, MalformedRequestYieldsInBandError) {
  Provider p("t");
  // Empty request.
  auto r1 = p.Handle(Slice());
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(OkHeader(*r1).ok());
  // Unknown message type.
  Buffer junk;
  junk.PutU8(200);
  auto r2 = Call(&p, junk);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(OkHeader(*r2).IsInvalidArgument());
  // Truncated payload.
  Buffer trunc;
  trunc.PutU8(static_cast<uint8_t>(MsgType::kCreateTable));
  trunc.PutU8(1);  // half a table id
  auto r3 = Call(&p, trunc);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(OkHeader(*r3).IsCorruption());
}

TEST(Provider, CreateInsertQueryExact) {
  Provider p("t");
  SetupTables(&p);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kFetchRows;
  SharePredicate pred;
  pred.column = 0;
  pred.kind = PredicateKind::kExactDet;
  pred.det_share = 10;
  q.predicates.push_back(pred);
  Buffer req;
  EncodeQuery(q, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  std::vector<StoredRow> rows;
  ASSERT_TRUE(DecodeRowsResponse(&dec, Layout2(), &rows).ok());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].row_id, 1u);
  EXPECT_EQ(rows[1].row_id, 3u);
}

TEST(Provider, RangePredicateUsesOpShares) {
  Provider p("t");
  SetupTables(&p);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kFetchRowIds;
  SharePredicate pred;
  pred.column = 0;
  pred.kind = PredicateKind::kRangeOp;
  pred.op_lo = 150;
  pred.op_hi = 350;
  q.predicates.push_back(pred);
  Buffer req;
  EncodeQuery(q, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  std::vector<uint64_t> ids;
  ASSERT_TRUE(DecodeRowIdsResponse(&dec, &ids).ok());
  EXPECT_EQ(ids, (std::vector<uint64_t>{2, 3}));
}

TEST(Provider, RangeOnNonOpColumnRejected) {
  Provider p("t");
  SetupTables(&p);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kFetchRowIds;
  SharePredicate pred;
  pred.column = 1;  // no op shares
  pred.kind = PredicateKind::kRangeOp;
  q.predicates.push_back(pred);
  Buffer req;
  EncodeQuery(q, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(OkHeader(*r).IsNotSupported());
}

TEST(Provider, PartialSumIsShareSum) {
  Provider p("t");
  SetupTables(&p);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kPartialSum;
  q.target_column = 1;
  SharePredicate pred;
  pred.column = 1;
  pred.kind = PredicateKind::kExactDet;
  pred.det_share = 55;
  q.predicates.push_back(pred);
  Buffer req;
  EncodeQuery(q, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  PartialAggregate agg;
  ASSERT_TRUE(DecodeAggResponse(&dec, &agg).ok());
  EXPECT_EQ(agg.count, 2u);
  EXPECT_EQ(agg.sum_share, (1 + 2000) + (2 + 2000));
}

TEST(Provider, MedianPicksLowerMiddleByOpOrder) {
  Provider p("t");
  SetupTables(&p);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kMedian;
  q.target_column = 0;
  Buffer req;
  EncodeQuery(q, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  std::vector<StoredRow> rows;
  ASSERT_TRUE(DecodeRowsResponse(&dec, Layout2(), &rows).ok());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].row_id, 2u);  // op shares 100,200,300 -> middle 200
}

TEST(Provider, JoinOnDetShares) {
  Provider p("t");
  SetupTables(&p);
  // Second table joins on column 0 det shares.
  Buffer create;
  EncodeCreateTable(8, Layout2(), &create);
  ASSERT_TRUE(OkHeader(*Call(&p, create)).ok());
  Buffer insert;
  EncodeInsertRows(8, Layout2(), {Row(100, 10, 1, 0), Row(101, 99, 2, 0)},
                   &insert);
  ASSERT_TRUE(OkHeader(*Call(&p, insert)).ok());

  JoinRequest jr;
  jr.left_table = 7;
  jr.left_column = 0;
  jr.right_table = 8;
  jr.right_column = 0;
  Buffer req;
  EncodeJoin(jr, &req);
  auto r = Call(&p, req);
  ASSERT_TRUE(r.ok());
  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  std::vector<JoinedRowPair> pairs;
  ASSERT_TRUE(DecodeJoinResponse(&dec, Layout2(), Layout2(), &pairs).ok());
  // det share 10 appears in rows 1,3 left and row 100 right.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].left.row_id, 1u);
  EXPECT_EQ(pairs[0].right.row_id, 100u);
  EXPECT_EQ(pairs[1].left.row_id, 3u);
}

TEST(Provider, TableLifecycleErrors) {
  Provider p("t");
  SetupTables(&p);
  Buffer create_dup;
  EncodeCreateTable(7, Layout2(), &create_dup);
  EXPECT_TRUE(OkHeader(*Call(&p, create_dup)).IsAlreadyExists());

  QueryRequest q;
  q.table_id = 99;
  Buffer req;
  EncodeQuery(q, &req);
  EXPECT_TRUE(OkHeader(*Call(&p, req)).IsNotFound());

  Buffer drop;
  EncodeDropTable(7, &drop);
  EXPECT_TRUE(OkHeader(*Call(&p, drop)).ok());
  EXPECT_TRUE(OkHeader(*Call(&p, drop)).IsNotFound());
}

TEST(Provider, StatsAccumulate) {
  Provider p("t");
  SetupTables(&p);
  EXPECT_GT(p.stats().requests, 0u);
  QueryRequest q;
  q.table_id = 7;
  q.action = QueryAction::kFetchRows;
  Buffer req;
  EncodeQuery(q, &req);
  ASSERT_TRUE(Call(&p, req).ok());
  EXPECT_EQ(p.stats().rows_returned, 3u);
  p.ResetStats();
  EXPECT_EQ(p.stats().requests, 0u);
}

TEST(Protocol, PredicateRoundTrip) {
  SharePredicate pred;
  pred.column = 9;
  pred.kind = PredicateKind::kRangeOp;
  pred.op_lo = MakeU128(1, 2);
  pred.op_hi = MakeU128(3, 4);
  Buffer buf;
  pred.EncodeTo(&buf);
  Decoder dec(buf.AsSlice());
  SharePredicate back;
  ASSERT_TRUE(SharePredicate::DecodeFrom(&dec, &back).ok());
  EXPECT_EQ(back.column, 9u);
  EXPECT_EQ(back.op_lo, MakeU128(1, 2));
  EXPECT_EQ(back.op_hi, MakeU128(3, 4));
}

TEST(Protocol, ResponseHeaderCarriesStatus) {
  Buffer buf;
  EncodeErrorResponse(Status::NotSupported("nope"), &buf);
  Decoder dec(buf.AsSlice());
  const Status st = DecodeResponseHeader(&dec);
  EXPECT_TRUE(st.IsNotSupported());
  EXPECT_EQ(st.message(), "nope");
}

TEST(Protocol, ImplausibleLengthRejected) {
  // A query request claiming 2^40 predicates must be rejected without
  // allocating.
  Buffer buf;
  buf.PutU8(static_cast<uint8_t>(MsgType::kQuery));
  buf.PutU32(1);
  buf.PutVarint(1ULL << 40);
  Provider p("t");
  auto r = p.Handle(buf.AsSlice());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(OkHeader(*r).IsCorruption());
}

}  // namespace
}  // namespace ssdb
