// Client-focused tests: configuration validation, quorum behaviour,
// public-data errors, lazy-mode thresholds, and protocol robustness
// against a hostile/buggy peer.

#include <gtest/gtest.h>

#include "core/outsourced_db.h"
#include "provider/provider.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

TEST(ClientCreate, Validation) {
  Network net;
  std::vector<size_t> providers;
  for (int i = 0; i < 3; ++i) {
    providers.push_back(
        net.AddProvider(std::make_shared<Provider>("p" + std::to_string(i))));
  }
  ClientOptions options;
  options.k = 2;
  EXPECT_FALSE(DataSourceClient::Create(nullptr, providers, options).ok());
  options.k = 0;
  EXPECT_FALSE(DataSourceClient::Create(&net, providers, options).ok());
  options.k = 4;  // > n
  EXPECT_FALSE(DataSourceClient::Create(&net, providers, options).ok());
  options.k = 2;
  EXPECT_TRUE(DataSourceClient::Create(&net, providers, options).ok());
  // Unknown provider index.
  EXPECT_FALSE(DataSourceClient::Create(&net, {0, 1, 9}, options).ok());
}

TEST(ClientCreate, LazyZeroFlushThresholdIsRejected) {
  // Regression: lazy_updates with lazy_flush_threshold == 0 used to be
  // accepted and silently meant "never auto-flush", so buffered writes
  // only reached the providers on an explicit Flush(). The combination
  // is now rejected at Create.
  Network net;
  std::vector<size_t> providers;
  for (int i = 0; i < 3; ++i) {
    providers.push_back(
        net.AddProvider(std::make_shared<Provider>("p" + std::to_string(i))));
  }
  ClientOptions options;
  options.k = 2;
  options.lazy_updates = true;
  options.lazy_flush_threshold = 0;
  auto rejected = DataSourceClient::Create(&net, providers, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument())
      << rejected.status().ToString();
  // Eager mode never consults the threshold, so zero stays legal there.
  options.lazy_updates = false;
  EXPECT_TRUE(DataSourceClient::Create(&net, providers, options).ok());
  // And the smallest lazy threshold (flush after every op) is legal too.
  options.lazy_updates = true;
  options.lazy_flush_threshold = 1;
  EXPECT_TRUE(DataSourceClient::Create(&net, providers, options).ok());
}

TEST(ClientCreate, DistinctMasterKeysYieldDistinctShares) {
  // Two clients with different keys over the same provider fleet must
  // produce unrelated deterministic shares (no cross-tenant equality).
  OutsourcedDbOptions o1, o2;
  o1.topology = o2.topology = Topology(/*m=*/1, /*n_per=*/2, /*k=*/2);
  o1.client.master_key = "tenant-a";
  o2.client.master_key = "tenant-b";
  auto db1 = std::move(OutsourcedDatabase::Create(o1)).value();
  auto db2 = std::move(OutsourcedDatabase::Create(o2)).value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 1000)};
  ASSERT_TRUE(db1->CreateTable(schema).ok());
  ASSERT_TRUE(db2->CreateTable(schema).ok());
  ASSERT_TRUE(db1->Insert("T", {{Value::Int(42)}}).ok());
  ASSERT_TRUE(db2->Insert("T", {{Value::Int(42)}}).ok());
  auto t1 = db1->provider(0).GetTableForTest(1);
  auto t2 = db2->provider(0).GetTableForTest(1);
  ASSERT_TRUE(t1.ok() && t2.ok());
  uint64_t det1 = 0, det2 = 0;
  (*t1)->ScanAll([&](const StoredRow& r) {
    det1 = r.cells[0].det;
    return true;
  });
  (*t2)->ScanAll([&](const StoredRow& r) {
    det2 = r.cells[0].det;
    return true;
  });
  EXPECT_NE(det1, det2);
}

TEST(ClientQuorum, FirstProvidersDownFallsBackToOthers) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(1, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(50)).ok());
  // Kill exactly the primary quorum (providers 0 and 1).
  db->faults().Down(0);
  db->faults().Down(1);
  auto r = db->Execute(Query::Select("Employees").Aggregate(AggregateOp::kCount));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 50u);
}

TEST(ClientLazy, AutoFlushAtThreshold) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  options.client.lazy_updates = true;
  options.client.lazy_flush_threshold = 5;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 1000000)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db->Insert("T", {{Value::Int(i)}}).ok());
  }
  EXPECT_EQ(db->client().pending_lazy_ops(), 4u);
  ASSERT_TRUE(db->Insert("T", {{Value::Int(4)}}).ok());
  EXPECT_EQ(db->client().pending_lazy_ops(), 0u);  // auto-flushed at 5
  auto table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->size(), 5u);
}

TEST(ClientPublic, ErrorsAndGuards) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/2, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  std::vector<ColumnSpec> cols = {IntColumn("v", 0, 100)};
  ASSERT_TRUE(db->PublishPublicTable("P", cols, {{Value::Int(5)}}).ok());
  EXPECT_TRUE(db->PublishPublicTable("P", cols, {}).IsAlreadyExists());
  EXPECT_TRUE(db->PublishPublicTable("Q", {}, {}).IsInvalidArgument());
  EXPECT_TRUE(db->PublishPublicTable("R", cols, {{Value::Int(1), Value::Int(2)}})
                  .IsInvalidArgument());
  // Query before subscribe.
  auto r = db->QueryPublic("P", Eq("v", Value::Int(5)));
  EXPECT_TRUE(r.status().IsNotSupported());
  EXPECT_TRUE(db->SubscribePublicColumn("P", "nope").IsNotFound());
  EXPECT_TRUE(db->SubscribePublicColumn("Nope", "v").IsNotFound());
  ASSERT_TRUE(db->SubscribePublicColumn("P", "v").ok());
  auto r2 = db->QueryPublic("P", Eq("v", Value::Int(5)));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 1u);
  // Out-of-domain public probe: provably empty.
  auto r3 = db->QueryPublic("P", Eq("v", Value::Int(101)));
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->rows.empty());
}

TEST(ClientStats, CountersAdvance) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(2, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(10)).ok());
  ASSERT_TRUE(db->Execute(Query::Select("Employees")).ok());
  EXPECT_EQ(db->client_stats().queries, 1u);
  EXPECT_EQ(db->client_stats().rows_reconstructed, 10u);
  EXPECT_GT(db->network_stats().calls, 0u);
  EXPECT_GT(db->simulated_time_us(), 0u);
}

TEST(ClientErrors, AggregateShapeErrors) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("a", 0, 100, kCapExactMatch),  // no range cap
                    IntColumn("b", 0, 100)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  ASSERT_TRUE(db->Insert("T", {{Value::Int(1), Value::Int(2)}}).ok());
  // MIN needs kCapRange.
  auto r = db->Execute(Query::Select("T").Aggregate(AggregateOp::kMin, "a"));
  EXPECT_TRUE(r.status().IsNotSupported());
  // Unknown aggregate column.
  auto r2 = db->Execute(Query::Select("T").Aggregate(AggregateOp::kSum, "z"));
  EXPECT_TRUE(r2.status().IsNotFound());
  // Range predicate on non-range column.
  auto r3 = db->Execute(
      Query::Select("T").Where(Between("a", Value::Int(0), Value::Int(9))));
  EXPECT_TRUE(r3.status().IsNotSupported());
  // Eq on column without exact-match (column b defaults to both caps, so
  // craft one without):
  TableSchema schema2;
  schema2.table_name = "U";
  schema2.columns = {IntColumn("c", 0, 100, kCapNone)};
  ASSERT_TRUE(db->CreateTable(schema2).ok());
  auto r4 = db->Execute(Query::Select("U").Where(Eq("c", Value::Int(1))));
  EXPECT_TRUE(r4.status().IsNotSupported());
}

TEST(ClientErrors, BetweenTypeMismatch) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/2, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Between("salary", Value::Str("A"),
                                          Value::Str("B"))));
  EXPECT_TRUE(r.status().IsInvalidArgument());
  auto r2 = db->Execute(Query::Select("Employees")
                            .Where(Between("name", Value::Int(1),
                                           Value::Int(2))));
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST(ClientDomains, SameColumnNameDifferentDomainsDoNotCollide) {
  // Regression: two tables may both declare a "dept" column with
  // different domains; the default domain names are table-qualified so
  // their sharing schemes stay independent.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema a;
  a.table_name = "A";
  a.columns = {IntColumn("dept", 0, 50)};
  TableSchema b;
  b.table_name = "B";
  b.columns = {IntColumn("dept", 0, 99)};
  ASSERT_TRUE(db->CreateTable(a).ok());
  ASSERT_TRUE(db->CreateTable(b).ok());
  ASSERT_TRUE(db->Insert("A", {{Value::Int(50)}}).ok());
  ASSERT_TRUE(db->Insert("B", {{Value::Int(99)}}).ok());  // > A's domain
  auto r = db->Execute(
      Query::Select("B").Where(Between("dept", Value::Int(60), Value::Int(99))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
  // And table-qualified domains mean the two "dept" columns do NOT join.
  JoinQuery jq;
  jq.left_table = "A";
  jq.left_column = "dept";
  jq.right_table = "B";
  jq.right_column = "dept";
  EXPECT_TRUE(db->Execute(jq).status().IsNotSupported());
}

TEST(ClientDomains, ExplicitSharedDomainMustAgreeAcrossTables) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema a;
  a.table_name = "A";
  a.columns = {IntColumn("x", 0, 100, kCapExactMatch, "shared")};
  ASSERT_TRUE(db->CreateTable(a).ok());
  TableSchema bad;
  bad.table_name = "B";
  bad.columns = {IntColumn("y", 0, 999, kCapExactMatch, "shared")};
  EXPECT_TRUE(db->CreateTable(bad).IsInvalidArgument());
  TableSchema good;
  good.table_name = "C";
  good.columns = {IntColumn("y", 0, 100, kCapExactMatch, "shared")};
  EXPECT_TRUE(db->CreateTable(good).ok());
}

TEST(ProtocolFuzz, RandomBytesNeverCrashAProvider) {
  // A provider must answer every byte string with a well-formed in-band
  // response (never crash, never hang, never return transport failure).
  Provider provider("fuzzed");
  Rng rng(0xF022);
  for (int trial = 0; trial < 3000; ++trial) {
    const size_t len = rng.Uniform(200);
    std::vector<uint8_t> junk(len);
    rng.FillBytes(junk.data(), junk.size());
    auto r = provider.Handle(Slice(junk));
    ASSERT_TRUE(r.ok());
    Decoder dec(r->AsSlice());
    // The response header must decode.
    (void)DecodeResponseHeader(&dec);
  }
}

TEST(ProtocolFuzz, TruncatedRealMessagesHandled) {
  // Take real messages and truncate them at every length; the provider
  // must reply with an in-band error, not crash.
  Provider provider("fuzzed");
  Buffer create;
  EncodeCreateTable(1, {{true, true}}, &create);
  ASSERT_TRUE(provider.Handle(create.AsSlice()).ok());

  StoredRow row;
  row.row_id = 1;
  row.cells.resize(1);
  row.cells[0].det = 5;
  row.cells[0].op = 500;
  Buffer insert;
  EncodeInsertRows(1, {{true, true}}, {row}, &insert);
  for (size_t cut = 0; cut < insert.size(); ++cut) {
    auto r = provider.Handle(Slice(insert.data(), cut));
    ASSERT_TRUE(r.ok()) << "cut=" << cut;
  }
  // Full message still works after all the truncated attempts.
  auto ok = provider.Handle(insert.AsSlice());
  ASSERT_TRUE(ok.ok());
  Decoder dec(ok->AsSlice());
  EXPECT_TRUE(DecodeResponseHeader(&dec).ok());
}

}  // namespace
}  // namespace ssdb
