// Tests for the encryption-based DAS baseline (Section II.A model).

#include <gtest/gtest.h>

#include "baseline/encrypted_das.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

TableSchema SmallSchema() {
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {
      StringColumn("name", 8),
      IntColumn("salary", 0, 100000),
  };
  return schema;
}

std::vector<std::vector<Value>> SmallRows() {
  return {
      {Value::Str("JOHN"), Value::Int(20000)},
      {Value::Str("ALICE"), Value::Int(35000)},
      {Value::Str("BOB"), Value::Int(50000)},
      {Value::Str("JOHN"), Value::Int(42000)},
  };
}

TEST(EncryptedDas, ExactMatchDecryptsAndFilters) {
  EncryptedDasOptions options;
  options.buckets = 4;  // small -> collisions -> false positives
  auto das = EncryptedDas::Create(SmallSchema(), options);
  ASSERT_TRUE(das.ok());
  ASSERT_TRUE((*das)->Insert(SmallRows()).ok());
  auto r = (*das)->ExecuteExact("name", Value::Str("JOHN"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  for (const auto& row : r->rows) EXPECT_EQ(row[0].AsString(), "JOHN");
  // Everything decrypted was counted, including false positives.
  EXPECT_GE((*das)->stats().tuples_decrypted, 2u);
}

TEST(EncryptedDas, RangeViaBucketizationIsSupersetThenExact) {
  EncryptedDasOptions options;
  options.buckets = 4;
  options.range_index = EncIndexKind::kBucketRange;
  auto das = EncryptedDas::Create(SmallSchema(), options);
  ASSERT_TRUE(das.ok());
  ASSERT_TRUE((*das)->Insert(SmallRows()).ok());
  auto r = (*das)->ExecuteRange("salary", Value::Int(30000), Value::Int(45000));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);  // 35000, 42000 after post-filtering
  // With 4 buckets over [0, 100000], the superset almost surely included
  // extra tuples.
  EXPECT_GE((*das)->stats().tuples_decrypted, 2u);
}

TEST(EncryptedDas, RangeViaOpeIsExact) {
  EncryptedDasOptions options;
  options.range_index = EncIndexKind::kOpe;
  auto das = EncryptedDas::Create(SmallSchema(), options);
  ASSERT_TRUE(das.ok());
  ASSERT_TRUE((*das)->Insert(SmallRows()).ok());
  (*das)->ResetStats();
  auto r = (*das)->ExecuteRange("salary", Value::Int(30000), Value::Int(45000));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  // OPE filters exactly: zero false positives.
  EXPECT_EQ((*das)->stats().false_positives, 0u);
  EXPECT_EQ((*das)->stats().tuples_decrypted, 2u);
}

TEST(EncryptedDas, SumIsClientSide) {
  auto das = EncryptedDas::Create(SmallSchema(), EncryptedDasOptions());
  ASSERT_TRUE(das.ok());
  ASSERT_TRUE((*das)->Insert(SmallRows()).ok());
  auto sum =
      (*das)->Sum("salary", "salary", Value::Int(0), Value::Int(100000));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value(), 20000 + 35000 + 50000 + 42000);
  // The client had to decrypt every matching tuple to add them up.
  EXPECT_GE((*das)->stats().tuples_decrypted, 4u);
}

TEST(EncryptedDas, TrivialFetchAllMovesWholeTable) {
  auto das = EncryptedDas::Create(SmallSchema(), EncryptedDasOptions());
  ASSERT_TRUE(das.ok());
  ASSERT_TRUE((*das)->Insert(SmallRows()).ok());
  (*das)->ResetStats();
  auto r = (*das)->FetchAllAndFilter("salary", Value::Int(40000),
                                     Value::Int(60000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ((*das)->stats().tuples_decrypted, 4u);
}

TEST(EncryptedDas, RoundTripThroughManyRows) {
  EmployeeGenerator gen(77, Distribution::kUniform);
  auto das = EncryptedDas::Create(EmployeeGenerator::EmployeesSchema(),
                                  EncryptedDasOptions());
  ASSERT_TRUE(das.ok());
  const auto rows = gen.Rows(500);
  ASSERT_TRUE((*das)->Insert(rows).ok());
  // Count matches of a reference filter.
  size_t expect = 0;
  for (const auto& row : rows) {
    const int64_t s = row[1].AsInt();
    if (s >= 50000 && s <= 60000) ++expect;
  }
  auto r = (*das)->ExecuteRange("salary", Value::Int(50000), Value::Int(60000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), expect);
}

TEST(EncryptedDas, ValidationErrors) {
  EncryptedDasOptions bad;
  bad.buckets = 0;
  EXPECT_FALSE(EncryptedDas::Create(SmallSchema(), bad).ok());
  auto das = EncryptedDas::Create(SmallSchema(), EncryptedDasOptions());
  ASSERT_TRUE(das.ok());
  EXPECT_TRUE((*das)
                  ->Insert({{Value::Int(5), Value::Int(5)}})
                  .IsInvalidArgument());
  EXPECT_TRUE(
      (*das)->ExecuteExact("nope", Value::Int(1)).status().IsNotFound());
}

}  // namespace
}  // namespace ssdb
