// Unit tests for the crypto substrate: SHA-256 / AES-128 against published
// test vectors, HMAC, PRF uniformity, OPE monotonicity.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/ope.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"

namespace ssdb {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(Slice(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(Slice("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::ToHex(Sha256::Hash(
          Slice("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 h;
  for (size_t off = 0; off < msg.size(); off += 37) {
    const size_t take = std::min<size_t>(37, msg.size() - off);
    h.Update(Slice(msg.data() + off, take));
  }
  EXPECT_EQ(Sha256::ToHex(h.Finalize()),
            Sha256::ToHex(Sha256::Hash(Slice(msg))));
}

TEST(Aes128, Fips197Vector) {
  // FIPS-197 Appendix C.1 style vector (128-bit key).
  Aes128::Key key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                       0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                              0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key);
  aes.EncryptBlock(block);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(block[i], expect[i]) << i;
  aes.DecryptBlock(block);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(block[i], 0x11 * i) << i;
}

TEST(Aes128, EncryptDecryptRandomBlocks) {
  Rng rng(11);
  Aes128::Key key;
  rng.FillBytes(key.data(), key.size());
  Aes128 aes(key);
  for (int trial = 0; trial < 200; ++trial) {
    uint8_t block[16], orig[16];
    rng.FillBytes(block, sizeof(block));
    memcpy(orig, block, sizeof(block));
    aes.EncryptBlock(block);
    EXPECT_NE(memcmp(block, orig, 16), 0);
    aes.DecryptBlock(block);
    EXPECT_EQ(memcmp(block, orig, 16), 0);
  }
}

TEST(AesCtr, TransformIsInvolution) {
  Rng rng(12);
  Aes128::Key key;
  rng.FillBytes(key.data(), key.size());
  AesCtr ctr(key, /*nonce=*/0x1234);
  std::string msg = "the quick brown fox jumps over the lazy dog";
  auto enc = ctr.TransformCopy(Slice(msg));
  EXPECT_NE(Slice(enc).ToString(), msg);
  auto dec = ctr.TransformCopy(Slice(enc));
  EXPECT_EQ(Slice(dec).ToString(), msg);
}

TEST(AesCtr, CounterOffsetsProduceDistinctStreams) {
  Aes128::Key key = {};
  AesCtr ctr(key, 7);
  std::vector<uint8_t> zeros(32, 0);
  auto a = ctr.TransformCopy(Slice(zeros), 0);
  auto b = ctr.TransformCopy(Slice(zeros), 2);
  EXPECT_NE(a, b);
}

TEST(Hmac, Rfc4231Case1) {
  // RFC 4231 test case 1.
  std::string key(20, '\x0b');
  const Sha256::Digest d = HmacSha256(Slice(key), Slice("Hi There"));
  EXPECT_EQ(Sha256::ToHex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Sha256::Digest d =
      HmacSha256(Slice("Jefe"), Slice("what do ya want for nothing?"));
  EXPECT_EQ(Sha256::ToHex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  std::string long_key(131, '\xaa');
  const Sha256::Digest d =
      HmacSha256(Slice(long_key),
                 Slice("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(Sha256::ToHex(d),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Prf, DeterministicAndKeySeparated) {
  const Prf p1 = Prf::Derive(Slice("master"), Slice("col:a"));
  const Prf p1b = Prf::Derive(Slice("master"), Slice("col:a"));
  const Prf p2 = Prf::Derive(Slice("master"), Slice("col:b"));
  EXPECT_EQ(p1.Eval64(42), p1b.Eval64(42));
  EXPECT_NE(p1.Eval64(42), p2.Eval64(42));
  EXPECT_NE(p1.Eval64(42, 0), p1.Eval64(42, 1));
}

TEST(Prf, UniformBounds) {
  const Prf p(123, 456);
  for (uint64_t m = 0; m < 2000; ++m) {
    EXPECT_LT(p.EvalUniform(m, 0, 17), 17u);
    EXPECT_LT(p.EvalUniform128(m, 0, 1000), static_cast<u128>(1000));
  }
}

TEST(Prf, UniformLooksUniform) {
  // chi-square style sanity check over 16 buckets.
  const Prf p(99, 100);
  int counts[16] = {0};
  const int kSamples = 16000;
  for (int m = 0; m < kSamples; ++m) {
    counts[p.EvalUniform(static_cast<uint64_t>(m), 7, 16)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / 16 / 2);
    EXPECT_LT(c, kSamples / 16 * 2);
  }
}

TEST(Ope, MonotoneOverSequentialValues) {
  const Prf prf(1, 2);
  OrderPreservingEncryption ope(prf, /*plain_bits=*/16);
  u128 prev = 0;
  bool first = true;
  for (uint64_t v = 0; v < 2000; ++v) {
    auto c = ope.Encrypt(v);
    ASSERT_TRUE(c.ok());
    if (!first) {
      EXPECT_GT(c.value(), prev) << "v=" << v;
    }
    prev = c.value();
    first = false;
  }
}

TEST(Ope, RoundTripRandomValues) {
  const Prf prf(3, 4);
  OrderPreservingEncryption ope(prf, /*plain_bits=*/40);
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    const uint64_t v = rng.Uniform(1ULL << 40);
    auto c = ope.Encrypt(v);
    ASSERT_TRUE(c.ok());
    auto back = ope.Decrypt(c.value());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), v);
  }
}

TEST(Ope, RejectsOutOfDomain) {
  const Prf prf(5, 6);
  OrderPreservingEncryption ope(prf, 8);
  EXPECT_TRUE(ope.Encrypt(256).status().IsOutOfRange());
  EXPECT_TRUE(ope.Encrypt(255).ok());
}

TEST(Ope, ForgedCiphertextDetected) {
  const Prf prf(7, 8);
  OrderPreservingEncryption ope(prf, 16);
  auto c = ope.Encrypt(1000);
  ASSERT_TRUE(c.ok());
  auto forged = ope.Decrypt(c.value() + 1);
  // Either it maps to no plaintext (Corruption) or to a different one whose
  // re-encryption differs — both must not silently return 1000.
  if (forged.ok()) {
    EXPECT_NE(forged.value(), 1000u);
  }
}

TEST(Ope, KeysProduceDifferentCiphertexts) {
  OrderPreservingEncryption a(Prf(1, 1), 24);
  OrderPreservingEncryption b(Prf(2, 2), 24);
  auto ca = a.Encrypt(12345);
  auto cb = b.Encrypt(12345);
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_NE(ca.value(), cb.value());
}

}  // namespace
}  // namespace ssdb
