// Boundary and stress tests across modules: extreme thresholds, domain
// edges, heavy index churn, aggregate corner cases, and Explain output.

#include <gtest/gtest.h>

#include "core/outsourced_db.h"
#include "storage/btree.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

TEST(BTreeStress, HeavyChurnKeepsInvariants) {
  BPlusTree tree;
  Rng rng(101);
  std::vector<std::pair<u128, uint64_t>> live;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const u128 key = rng.Uniform(100000);
      const uint64_t value = rng.Next();
      tree.Insert(key, value);
      live.emplace_back(key, value);
    }
    // Erase half the live set, randomly.
    rng.Shuffle(&live);
    const size_t keep = live.size() / 2;
    for (size_t i = keep; i < live.size(); ++i) {
      ASSERT_TRUE(tree.Erase(live[i].first, live[i].second));
    }
    live.resize(keep);
    ASSERT_TRUE(tree.CheckInvariants()) << "round " << round;
    ASSERT_EQ(tree.size(), live.size());
  }
}

TEST(Shamir, MaximumFieldValues) {
  Rng rng(102);
  auto ctx = SharingContext::CreateRandom(3, 2, &rng);
  ASSERT_TRUE(ctx.ok());
  // Secrets at the field boundary round-trip.
  for (uint64_t secret :
       {uint64_t{0}, uint64_t{1}, uint64_t{Fp61::kP - 1}}) {
    const auto shares = ctx->Split(Fp61::FromCanonical(secret), &rng);
    auto r = ctx->Reconstruct({{0, shares[0]}, {2, shares[2]}});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value(), secret);
  }
}

TEST(Shamir, KEqualsOneIsDegenerate) {
  // k = 1 means the "polynomial" is the constant: every provider holds
  // the secret. Mathematically valid, cryptographically useless — the
  // library permits it (callers own the policy) and round-trips.
  Rng rng(103);
  auto ctx = SharingContext::CreateRandom(2, 1, &rng);
  ASSERT_TRUE(ctx.ok());
  const auto shares = ctx->Split(Fp61::FromU64(7), &rng);
  EXPECT_EQ(shares[0].value(), 7u);
  auto r = ctx->Reconstruct({{1, shares[1]}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value(), 7u);
}

TEST(OrderPreserving, SingleValueDomain) {
  const Prf prf(1, 2);
  auto scheme = OrderPreservingScheme::Create(prf, {5, 5}, 1, {1, 2});
  ASSERT_TRUE(scheme.ok());
  auto shares = scheme->ShareAll(5);
  ASSERT_TRUE(shares.ok());
  auto r = scheme->Reconstruct({{0, shares.value()[0]}, {1, shares.value()[1]}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_TRUE(scheme->Share(6, 0).status().IsOutOfRange());
}

TEST(OrderPreserving, RecursiveInvertSingle) {
  const Prf prf(3, 4);
  auto scheme = OrderPreservingScheme::Create(
      prf, {-100, 100}, 2, {5, 9, 13}, OpSlotMode::kRecursive);
  ASSERT_TRUE(scheme.ok());
  for (int64_t v = -100; v <= 100; v += 17) {
    auto s = scheme->Share(v, 1);
    ASSERT_TRUE(s.ok());
    auto back = scheme->InvertSingle(s.value(), 1);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(String27, MaxWidthBoundary) {
  auto codec = String27::Create(12);
  ASSERT_TRUE(codec.ok());
  const std::string max(12, 'Z');
  auto code = codec->Encode(max);
  ASSERT_TRUE(code.ok());
  // 27^12 - 1 must fit in the 60-bit sharing domain.
  EXPECT_LT(static_cast<u128>(code.value()), static_cast<u128>(1) << 60);
  EXPECT_EQ(codec->Decode(code.value()).value(), max);
}

TEST(Aggregates, MedianEvenAndOddCounts) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 1000)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  ASSERT_TRUE(db->Insert("T", {{Value::Int(10)},
                               {Value::Int(20)},
                               {Value::Int(30)},
                               {Value::Int(40)}})
                  .ok());
  // Even count: lower median.
  auto even = db->Execute(Query::Select("T").Aggregate(AggregateOp::kMedian, "v"));
  ASSERT_TRUE(even.ok());
  EXPECT_EQ(even->aggregate_int, 20);
  ASSERT_TRUE(db->Insert("T", {{Value::Int(50)}}).ok());
  auto odd = db->Execute(Query::Select("T").Aggregate(AggregateOp::kMedian, "v"));
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->aggregate_int, 30);
}

TEST(Aggregates, MinWithTiesReturnsAllTiedRows) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {StringColumn("who", 4), IntColumn("v", 0, 1000)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  ASSERT_TRUE(db->Insert("T", {{Value::Str("A"), Value::Int(5)},
                               {Value::Str("B"), Value::Int(5)},
                               {Value::Str("C"), Value::Int(9)}})
                  .ok());
  auto r = db->Execute(Query::Select("T").Aggregate(AggregateOp::kMin, "v"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->aggregate_int, 5);
  EXPECT_EQ(r->rows.size(), 2u);  // both tied rows returned
}

TEST(Aggregates, EmptyMatchSets) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  auto sum = db->Execute(Query::Select("Employees")
                             .Where(Eq("dept", Value::Int(3)))
                             .Aggregate(AggregateOp::kSum, "salary"));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->aggregate_int, 0);
  EXPECT_EQ(sum->count, 0u);
  auto mn = db->Execute(Query::Select("Employees")
                            .Aggregate(AggregateOp::kMin, "salary"));
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->rows.empty());
  auto grouped = db->Execute(Query::Select("Employees")
                                 .Aggregate(AggregateOp::kSum, "salary")
                                 .GroupBy("dept"));
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE(grouped->groups.empty());
}

TEST(Aggregates, MedianOverEmptySetIsAnExplicitError) {
  // Regression: MEDIAN over zero matching rows used to report a silent 0
  // (indistinguishable from a real median of 0). An empty result set now
  // surfaces as NotFound, on both the provider-round path and the
  // no-communication always-empty short circuit.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {{Value::Str("ADA"), Value::Int(100), Value::Int(1)},
                          {Value::Str("BOB"), Value::Int(200), Value::Int(1)}})
                  .ok());

  // In-domain predicate matching nothing: providers are contacted, the
  // reconstructed match set is empty.
  auto med = db->Execute(Query::Select("Employees")
                             .Where(Eq("dept", Value::Int(2)))
                             .Aggregate(AggregateOp::kMedian, "salary"));
  ASSERT_FALSE(med.ok());
  EXPECT_TRUE(med.status().IsNotFound()) << med.status().ToString();

  // Out-of-domain predicate: provably empty, no provider round at all —
  // the same contract must hold.
  auto short_circuit =
      db->Execute(Query::Select("Employees")
                      .Where(Eq("dept", Value::Int(500)))
                      .Aggregate(AggregateOp::kMedian, "salary"));
  ASSERT_FALSE(short_circuit.ok());
  EXPECT_TRUE(short_circuit.status().IsNotFound())
      << short_circuit.status().ToString();

  // Non-empty sets keep working.
  auto ok = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(Aggregates, SumAtDomainScaleStaysExact) {
  // SUM is exact while the sum of offsets stays below 2^61-1; verify a
  // case safely under the bound with large values.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema schema;
  schema.table_name = "Big";
  const int64_t big = (1LL << 55);
  schema.columns = {IntColumn("v", 0, big)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({Value::Int(big - i)});
  ASSERT_TRUE(db->Insert("Big", rows).ok());
  auto sum = db->Execute(Query::Select("Big").Aggregate(AggregateOp::kSum, "v"));
  ASSERT_TRUE(sum.ok());
  int64_t expect = 0;
  for (int i = 0; i < 30; ++i) expect += big - i;
  EXPECT_EQ(sum->aggregate_int, expect);
}

TEST(Explain, RendersPlan) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  auto plan = db->Explain(Query::Select("Employees")
                              .Where(Eq("name", Value::Str("JOHN")))
                              .Where(Between("salary", Value::Int(1),
                                             Value::Int(2)))
                              .Where(Prefix("name", "JO"))
                              .Aggregate(AggregateOp::kSum, "salary"));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("deterministic shares"), std::string::npos);
  EXPECT_NE(plan->find("order-preserving shares"), std::string::npos);
  EXPECT_NE(plan->find("base-27"), std::string::npos);
  EXPECT_NE(plan->find("PartialSum(provider-side)"), std::string::npos);
  EXPECT_NE(plan->find("read quorum: 2 of 4"), std::string::npos);

  auto bad = db->Explain(Query::Select("Nope"));
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(Network, ManyProvidersMaxConfig) {
  // n = 64, k = 32: still correct, just heavier.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/64, /*k=*/32);
  auto db_r = OutsourcedDatabase::Create(options);
  ASSERT_TRUE(db_r.ok());
  auto& db = *db_r.value();
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 100)};
  ASSERT_TRUE(db.CreateTable(schema).ok());
  ASSERT_TRUE(db.Insert("T", {{Value::Int(50)}}).ok());
  auto r = db.Execute(
      Query::Select("T").Where(Between("v", Value::Int(0), Value::Int(100))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 50);
}

}  // namespace
}  // namespace ssdb
