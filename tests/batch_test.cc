// Batch envelope tests: wire framing, provider semantics, end-to-end
// equivalence between batched and per-op request streams, exact
// trace/ChannelStats reconciliation under batching, thread-count
// determinism, fault interaction, and the net_batch_* telemetry.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/outsourced_db.h"
#include "net/batch.h"
#include "provider/protocol.h"
#include "provider/provider.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t n, size_t k, size_t rows,
                                           size_t batch_max_ops,
                                           size_t fanout_threads = 0,
                                           bool lazy = false) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.client.batch_max_ops = batch_max_ops;
  options.fanout_threads = fanout_threads;
  options.client.lazy_updates = lazy;
  if (lazy) options.client.lazy_flush_threshold = 1000000;  // manual Flush only
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  EXPECT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  if (rows > 0) {
    EmployeeGenerator gen(77, Distribution::kUniform);
    EXPECT_TRUE(db->Insert("Employees", gen.Rows(rows)).ok());
    EXPECT_TRUE(db->Flush().ok());
  }
  return db;
}

std::string Fingerprint(const Result<QueryResult>& r) {
  if (!r.ok()) return "ERR:" + r.status().ToString();
  std::string out;
  for (const auto& row : r->rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += ',';
    }
    out += ';';
  }
  out += "#" + std::to_string(r->count);
  out += "/" + std::to_string(r->aggregate_int);
  for (const auto& g : r->groups) {
    out += "|" + g.key.ToString() + ":" + std::to_string(g.sum) + "." +
           std::to_string(g.count);
  }
  return out;
}

std::vector<Query> PointReadWorkload() {
  std::vector<Query> queries;
  for (int dept = 0; dept < 12; ++dept) {
    queries.push_back(
        Query::Select("Employees").Where(Eq("dept", Value::Int(dept))));
  }
  return queries;
}

// --- Envelope framing -------------------------------------------------------

TEST(BatchCodec, RequestRoundTrip) {
  Buffer op1, op2, op3;
  op1.PutU8(1);
  op1.PutU32(7);
  op2.PutU8(14);
  op3.PutU8(2);
  op3.PutLengthPrefixed(Slice("payload"));

  Buffer envelope;
  EncodeBatchRequest(std::vector<Buffer>{op1, op2, op3}, &envelope);

  Decoder dec(envelope.AsSlice());
  uint8_t tag = 0;
  ASSERT_TRUE(dec.GetU8(&tag).ok());
  EXPECT_EQ(tag, kBatchMsgTag);
  std::vector<Slice> ops;
  ASSERT_TRUE(DecodeBatchRequestPayload(&dec, &ops).ok());
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].size(), op1.size());
  EXPECT_EQ(ops[1].size(), op2.size());
  EXPECT_EQ(ops[2].size(), op3.size());
  EXPECT_EQ(0, memcmp(ops[2].data(), op3.data(), op3.size()));
  EXPECT_TRUE(dec.done());
}

TEST(BatchCodec, ResponseRoundTripAllowsEmpty) {
  Buffer r1, r2;
  EncodeOkHeader(&r1);
  EncodeErrorResponse(Status::NotFound("gone"), &r2);
  Buffer payload;
  EncodeBatchResponsePayload({r1, r2}, &payload);
  Decoder dec(payload.AsSlice());
  std::vector<Slice> responses;
  ASSERT_TRUE(DecodeBatchResponsePayload(&dec, &responses).ok());
  ASSERT_EQ(responses.size(), 2u);
  Decoder sub0(responses[0]);
  EXPECT_TRUE(DecodeResponseHeader(&sub0).ok());
  Decoder sub1(responses[1]);
  EXPECT_TRUE(DecodeResponseHeader(&sub1).IsNotFound());

  // Zero responses stay decodable (a quorum answer can be all-error).
  Buffer none;
  EncodeBatchResponsePayload({}, &none);
  Decoder dec2(none.AsSlice());
  ASSERT_TRUE(DecodeBatchResponsePayload(&dec2, &responses).ok());
  EXPECT_TRUE(responses.empty());
}

TEST(BatchCodec, FuzzReencodeByteIdentical) {
  // Decode returns slice views into the envelope (no copies); re-encoding
  // those views must reproduce the envelope byte for byte, including the
  // reserve-exact size computation.
  Rng rng(0xBA7C);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Buffer> ops(1 + rng.Uniform(8));
    for (Buffer& op : ops) {
      const size_t len = rng.Uniform(400);
      for (size_t i = 0; i < len; ++i) {
        op.PutU8(static_cast<uint8_t>(rng.Next()));
      }
    }
    Buffer envelope;
    EncodeBatchRequest(ops, &envelope);

    Decoder dec(envelope.AsSlice());
    uint8_t tag = 0;
    ASSERT_TRUE(dec.GetU8(&tag).ok());
    std::vector<Slice> views;
    ASSERT_TRUE(DecodeBatchRequestPayload(&dec, &views).ok());
    EXPECT_TRUE(dec.done());

    Buffer reencoded;
    EncodeBatchRequest(views, &reencoded);
    ASSERT_EQ(reencoded.size(), envelope.size());
    EXPECT_EQ(0,
              memcmp(reencoded.data(), envelope.data(), envelope.size()))
        << "trial " << trial;

    // Same for the response payload framing.
    Buffer payload;
    EncodeBatchResponsePayload(ops, &payload);
    Decoder pdec(payload.AsSlice());
    std::vector<Slice> responses;
    ASSERT_TRUE(DecodeBatchResponsePayload(&pdec, &responses).ok());
    ASSERT_EQ(responses.size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_EQ(responses[i].size(), ops[i].size());
      EXPECT_EQ(0, memcmp(responses[i].data(), ops[i].data(), ops[i].size()));
    }
  }
}

TEST(BatchCodec, RejectsMalformedEnvelopes) {
  // Empty request envelope is meaningless.
  Buffer empty;
  empty.PutVarint(0);
  Decoder dec(empty.AsSlice());
  std::vector<Slice> ops;
  EXPECT_TRUE(DecodeBatchRequestPayload(&dec, &ops).IsInvalidArgument());

  // An absurd op count must fail the decode bound, not attempt a huge
  // reserve.
  Buffer bomb;
  bomb.PutVarint(kMaxBatchOps + 1);
  Decoder dec2(bomb.AsSlice());
  EXPECT_TRUE(DecodeBatchRequestPayload(&dec2, &ops).IsCorruption());

  // Truncated sub-op.
  Buffer truncated;
  truncated.PutVarint(1);
  truncated.PutVarint(100);  // claims 100 bytes, provides none
  Decoder dec3(truncated.AsSlice());
  EXPECT_FALSE(DecodeBatchRequestPayload(&dec3, &ops).ok());
}

// --- Provider semantics -----------------------------------------------------

TEST(BatchProvider, MixedOpsExecuteUnderOneRequest) {
  Provider p("t");
  const std::vector<ProviderColumnLayout> layout = {{true, true}};
  StoredRow row;
  row.row_id = 1;
  row.cells.resize(1);
  row.cells[0].det = 10;
  row.cells[0].op = 100;
  row.cells[0].secret = 42;

  Buffer create, insert, stats_known, stats_unknown, nested;
  EncodeCreateTable(7, layout, &create);
  EncodeInsertRows(7, layout, {row}, &insert);
  EncodeTableStats(7, &stats_known);
  EncodeTableStats(99, &stats_unknown);  // unknown table -> embedded error
  EncodeBatchRequest(std::vector<Buffer>{stats_known}, &nested);  // nested

  Buffer envelope;
  EncodeBatchRequest(
      std::vector<Buffer>{create, insert, stats_known, stats_unknown, nested},
      &envelope);

  auto r = p.Handle(envelope.AsSlice());
  ASSERT_TRUE(r.ok());
  // The whole envelope is ONE provider request.
  EXPECT_EQ(p.stats().requests.load(), 1u);

  Decoder dec(r->AsSlice());
  ASSERT_TRUE(DecodeResponseHeader(&dec).ok());
  std::vector<Slice> responses;
  ASSERT_TRUE(DecodeBatchResponsePayload(&dec, &responses).ok());
  ASSERT_EQ(responses.size(), 5u);

  // Sub-ops executed in order: create, insert and the first stats call
  // succeeded; the unknown table and the nested envelope travel as
  // embedded error responses without masking their siblings.
  Decoder s0(responses[0]), s1(responses[1]), s2(responses[2]);
  EXPECT_TRUE(DecodeResponseHeader(&s0).ok());
  EXPECT_TRUE(DecodeResponseHeader(&s1).ok());
  EXPECT_TRUE(DecodeResponseHeader(&s2).ok());
  Decoder s3(responses[3]);
  EXPECT_TRUE(DecodeResponseHeader(&s3).IsNotFound());
  Decoder s4(responses[4]);
  EXPECT_TRUE(DecodeResponseHeader(&s4).IsInvalidArgument());
}

TEST(BatchProvider, EmptyEnvelopeIsAnInBandError) {
  Provider p("t");
  Buffer envelope;
  envelope.PutU8(kBatchMsgTag);
  envelope.PutVarint(0);
  auto r = p.Handle(envelope.AsSlice());
  ASSERT_TRUE(r.ok());  // errors travel in-band, never as transport failures
  Decoder dec(r->AsSlice());
  EXPECT_FALSE(DecodeResponseHeader(&dec).ok());
}

// --- End-to-end equivalence -------------------------------------------------

TEST(BatchEquivalence, BulkLoadMatchesInsertAndSlashesCalls) {
  EmployeeGenerator gen(9, Distribution::kUniform);
  const auto rows = gen.Rows(60);

  auto reference = MakeDb(3, 2, 0, /*batch_max_ops=*/128);
  ASSERT_TRUE(reference->Insert("Employees", rows).ok());

  auto bulk = MakeDb(3, 2, 0, /*batch_max_ops=*/128);
  const uint64_t bulk_calls_before = bulk->network_stats().calls;
  ASSERT_TRUE(bulk->BulkLoad("Employees", rows).ok());
  const uint64_t bulk_calls = bulk->network_stats().calls - bulk_calls_before;

  auto per_row = MakeDb(3, 2, 0, /*batch_max_ops=*/128);
  const uint64_t per_row_before = per_row->network_stats().calls;
  for (const auto& row : rows) {
    ASSERT_TRUE(per_row->Insert("Employees", {row}).ok());
  }
  const uint64_t per_row_calls =
      per_row->network_stats().calls - per_row_before;

  // Identical stored data: a full scan returns the same rows in the same
  // order on all three deployments.
  const Query all = Query::Select("Employees");
  const std::string want = Fingerprint(reference->Execute(all));
  EXPECT_EQ(Fingerprint(bulk->Execute(all)), want);
  EXPECT_EQ(Fingerprint(per_row->Execute(all)), want);

  // 60 rows in one chunk: n envelope calls versus 60*n insert calls.
  EXPECT_GE(per_row_calls, 3 * bulk_calls)
      << "bulk=" << bulk_calls << " per_row=" << per_row_calls;
}

TEST(BatchEquivalence, BatchedPointReadsMatchPerOpWireTraffic) {
  auto batched = MakeDb(4, 2, 200, /*batch_max_ops=*/128);
  auto unbatched = MakeDb(4, 2, 200, /*batch_max_ops=*/1);
  const auto queries = PointReadWorkload();

  const uint64_t batched_before = batched->network_stats().calls;
  auto batched_results = batched->ExecuteBatch(queries);
  const uint64_t batched_calls =
      batched->network_stats().calls - batched_before;

  const uint64_t unbatched_before = unbatched->network_stats().calls;
  auto unbatched_results = unbatched->ExecuteBatch(queries);
  const uint64_t unbatched_calls =
      unbatched->network_stats().calls - unbatched_before;

  ASSERT_EQ(batched_results.size(), queries.size());
  ASSERT_EQ(unbatched_results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batched_results[i].ok())
        << i << ": " << batched_results[i].status().ToString();
    EXPECT_EQ(Fingerprint(batched_results[i]), Fingerprint(unbatched_results[i]))
        << "slot " << i;
  }

  // 12 compatible point reads fuse into one envelope per contacted
  // provider: >= 3x fewer network calls than the per-op stream.
  EXPECT_GE(unbatched_calls, 3 * batched_calls)
      << "batched=" << batched_calls << " unbatched=" << unbatched_calls;

  // The fused run charged the envelope telemetry.
  EXPECT_GT(
      batched->metrics().GetCounter("ssdb_net_batch_envelopes_total")->value(),
      0u);
  EXPECT_EQ(
      unbatched->metrics().GetCounter("ssdb_net_batch_envelopes_total")->value(),
      0u);
}

TEST(BatchEquivalence, UnionBranchesShareOneRound) {
  auto batched = MakeDb(4, 2, 200, /*batch_max_ops=*/128);
  auto unbatched = MakeDb(4, 2, 200, /*batch_max_ops=*/1);
  const Query disj = Query::Select("Employees")
                         .WhereAny({Eq("dept", Value::Int(1)),
                                    Eq("dept", Value::Int(2)),
                                    Eq("dept", Value::Int(3))});

  const uint64_t batched_before = batched->network_stats().calls;
  auto b = batched->Execute(disj);
  const uint64_t batched_calls = batched->network_stats().calls - batched_before;

  const uint64_t unbatched_before = unbatched->network_stats().calls;
  auto u = unbatched->Execute(disj);
  const uint64_t unbatched_calls =
      unbatched->network_stats().calls - unbatched_before;

  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(Fingerprint(b), Fingerprint(u));
  // Three branches fused into one envelope round: 3x fewer calls.
  EXPECT_GE(unbatched_calls, 3 * batched_calls)
      << "batched=" << batched_calls << " unbatched=" << unbatched_calls;
}

TEST(BatchEquivalence, LazyFlushCoalescesPerProvider) {
  auto run = [](size_t batch_max_ops) {
    // 20 rows flushed to the providers, then a mixed pending log: 10 new
    // inserts plus a salary update that rewrites every stored row.
    auto db = MakeDb(3, 2, 20, batch_max_ops, /*fanout_threads=*/0,
                     /*lazy=*/true);
    EmployeeGenerator gen(11, Distribution::kUniform);
    EXPECT_TRUE(db->Insert("Employees", gen.Rows(10)).ok());
    EXPECT_TRUE(
        db->Update("Employees",
                   {Between("salary", Value::Int(0), Value::Int(200000))},
                   "salary", Value::Int(12345))
            .ok());
    const uint64_t before = db->network_stats().calls;
    EXPECT_TRUE(db->Flush().ok());
    const uint64_t flush_calls = db->network_stats().calls - before;
    const std::string rows = Fingerprint(db->Execute(Query::Select("Employees")));
    return std::make_pair(flush_calls, rows);
  };

  const std::pair<uint64_t, std::string> coalesced = run(128);
  const std::pair<uint64_t, std::string> per_op = run(1);
  EXPECT_EQ(coalesced.second, per_op.second);
  // The flush shipped the inserts and updates in ONE envelope per
  // provider instead of one round per op kind.
  EXPECT_GE(per_op.first, 2 * coalesced.first)
      << "coalesced=" << coalesced.first << " per_op=" << per_op.first;
}

TEST(BatchEquivalence, BatchedJoinsMatchSerialExecution) {
  auto setup = [](size_t batch_max_ops) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    options.client.batch_max_ops = batch_max_ops;
    auto db = std::move(OutsourcedDatabase::Create(options)).value();
    TableSchema employees;
    employees.table_name = "Emp";
    employees.columns = {
        IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
        StringColumn("name", 8),
    };
    TableSchema managers;
    managers.table_name = "Mgr";
    managers.columns = {
        IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
        IntColumn("boss", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
    };
    EXPECT_TRUE(db->CreateTable(employees).ok());
    EXPECT_TRUE(db->CreateTable(managers).ok());
    EXPECT_TRUE(db->Insert("Emp", {{Value::Int(1), Value::Str("JOHN")},
                                   {Value::Int(2), Value::Str("ALICE")},
                                   {Value::Int(3), Value::Str("BOB")}})
                    .ok());
    EXPECT_TRUE(db->Insert("Mgr", {{Value::Int(1), Value::Int(3)},
                                   {Value::Int(3), Value::Int(3)},
                                   {Value::Int(2), Value::Int(1)}})
                    .ok());
    return db;
  };

  JoinQuery jq;
  jq.left_table = "Emp";
  jq.left_column = "eid";
  jq.right_table = "Mgr";
  jq.right_column = "eid";
  const std::vector<JoinQuery> joins = {jq, jq, jq, jq};

  auto batched = setup(128);
  auto unbatched = setup(1);

  const uint64_t batched_before = batched->network_stats().calls;
  auto b = batched->ExecuteBatch(joins);
  const uint64_t batched_calls = batched->network_stats().calls - batched_before;

  const uint64_t unbatched_before = unbatched->network_stats().calls;
  auto u = unbatched->ExecuteBatch(joins);
  const uint64_t unbatched_calls =
      unbatched->network_stats().calls - unbatched_before;

  ASSERT_EQ(b.size(), joins.size());
  for (size_t i = 0; i < joins.size(); ++i) {
    ASSERT_TRUE(b[i].ok()) << b[i].status().ToString();
    EXPECT_EQ(Fingerprint(b[i]), Fingerprint(u[i])) << "slot " << i;
    EXPECT_EQ(b[i]->rows.size(), 3u);
  }
  // Four identical share fetches ride one envelope per provider.
  EXPECT_GE(unbatched_calls, 3 * batched_calls)
      << "batched=" << batched_calls << " unbatched=" << unbatched_calls;
}

// --- Accounting reconciliation ----------------------------------------------

TEST(BatchAccounting, UnionTraceReconcilesWithChannelStats) {
  auto db = MakeDb(4, 2, 300, /*batch_max_ops=*/128);
  const Query disj = Query::Select("Employees")
                         .WhereAny({Eq("dept", Value::Int(1)),
                                    Eq("dept", Value::Int(2)),
                                    Eq("dept", Value::Int(3))});

  std::vector<ChannelStats> before;
  for (size_t i = 0; i < db->n(); ++i) before.push_back(db->network().stats(i));
  const uint64_t clock_before = db->simulated_time_us();
  const uint64_t envelopes_before =
      db->metrics().GetCounter("ssdb_net_batch_envelopes_total")->value();

  auto r = db->Execute(disj);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Batching must actually have engaged for this to pin anything.
  EXPECT_GT(db->metrics().GetCounter("ssdb_net_batch_envelopes_total")->value(),
            envelopes_before);

  // The envelope's bytes and clock land on the trace exactly, per leg.
  EXPECT_EQ(r->trace.total_clock_us(), db->simulated_time_us() - clock_before);
  const auto per_provider = r->trace.PerProviderBytes();
  for (size_t i = 0; i < db->n(); ++i) {
    const ChannelStats& after = db->network().stats(i);
    auto it = per_provider.find(static_cast<uint32_t>(i));
    const uint64_t traced_sent =
        it == per_provider.end() ? 0 : it->second.first;
    const uint64_t traced_received =
        it == per_provider.end() ? 0 : it->second.second;
    EXPECT_EQ(traced_sent, after.bytes_sent - before[i].bytes_sent)
        << "provider " << i << "\n"
        << r->trace.ToString();
    EXPECT_EQ(traced_received, after.bytes_received - before[i].bytes_received)
        << "provider " << i << "\n"
        << r->trace.ToString();
  }
}

TEST(BatchAccounting, FusedBatchTracesReconcileInAggregate) {
  auto db = MakeDb(4, 2, 300, /*batch_max_ops=*/128);
  const auto queries = PointReadWorkload();

  std::vector<ChannelStats> before;
  for (size_t i = 0; i < db->n(); ++i) before.push_back(db->network().stats(i));
  const uint64_t clock_before = db->simulated_time_us();

  auto results = db->ExecuteBatch(queries);
  ASSERT_EQ(results.size(), queries.size());

  // Envelope legs are recorded once (on the fused chunk's lead trace), so
  // summing every slot's per-provider bytes reproduces the channel deltas
  // exactly — nothing double-counted, nothing dropped.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> summed;
  uint64_t clock_sum = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    clock_sum += r->trace.total_clock_us();
    for (const auto& [provider, bytes] : r->trace.PerProviderBytes()) {
      summed[provider].first += bytes.first;
      summed[provider].second += bytes.second;
    }
  }
  for (size_t i = 0; i < db->n(); ++i) {
    const ChannelStats& after = db->network().stats(i);
    EXPECT_EQ(summed[static_cast<uint32_t>(i)].first,
              after.bytes_sent - before[i].bytes_sent)
        << "provider " << i;
    EXPECT_EQ(summed[static_cast<uint32_t>(i)].second,
              after.bytes_received - before[i].bytes_received)
        << "provider " << i;
  }
  EXPECT_EQ(clock_sum, db->simulated_time_us() - clock_before);

  // Telemetry: every envelope charged, with the op totals to match.
  const uint64_t envelopes =
      db->metrics().GetCounter("ssdb_net_batch_envelopes_total")->value();
  const uint64_t ops =
      db->metrics().GetCounter("ssdb_net_batch_ops_total")->value();
  EXPECT_GT(envelopes, 0u);
  EXPECT_GE(ops, 2 * envelopes);  // every envelope carries >= 2 ops
}

// --- Determinism ------------------------------------------------------------

TEST(BatchDeterminism, ExportsIdenticalAcrossFanoutThreadCounts) {
  std::vector<std::string> exports;
  std::vector<std::string> fingerprints;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    auto db = MakeDb(4, 2, 200, /*batch_max_ops=*/128, threads);
    std::string fp;
    for (const auto& r : db->ExecuteBatch(PointReadWorkload())) {
      fp += Fingerprint(r);
      fp += '\n';
    }
    fp += Fingerprint(db->Execute(
        Query::Select("Employees")
            .WhereAny({Eq("dept", Value::Int(1)), Eq("dept", Value::Int(2))})));
    fp += "@" + std::to_string(db->simulated_time_us());
    fingerprints.push_back(std::move(fp));
    exports.push_back(db->metrics().ExportJson());
  }
  EXPECT_EQ(fingerprints[1], fingerprints[0]);
  EXPECT_EQ(fingerprints[2], fingerprints[0]);
  EXPECT_EQ(exports[1], exports[0]);
  EXPECT_EQ(exports[2], exports[0]);
}

// --- Faults -----------------------------------------------------------------

TEST(BatchResilience, PartialBatchFailureRetriesPerPlan) {
  auto reference = MakeDb(5, 2, 150, /*batch_max_ops=*/128);
  std::vector<std::string> want;
  for (const auto& r : reference->ExecuteBatch(PointReadWorkload())) {
    want.push_back(Fingerprint(r));
  }

  auto faulted = MakeDb(5, 2, 150, /*batch_max_ops=*/128);
  faulted->faults().Down(0);
  faulted->faults().Corrupt(2);
  auto got = faulted->ExecuteBatch(PointReadWorkload());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << i << ": " << got[i].status().ToString();
    EXPECT_EQ(Fingerprint(got[i]), want[i]) << "slot " << i;
  }

  // The fused union path survives the same faults (falling back to the
  // classic per-branch ladder where it must).
  const Query disj = Query::Select("Employees")
                         .WhereAny({Eq("dept", Value::Int(1)),
                                    Eq("dept", Value::Int(2))});
  auto u_ref = reference->Execute(disj);
  auto u_faulted = faulted->Execute(disj);
  ASSERT_TRUE(u_faulted.ok()) << u_faulted.status().ToString();
  EXPECT_EQ(Fingerprint(u_faulted), Fingerprint(u_ref));
}

}  // namespace
}  // namespace ssdb
