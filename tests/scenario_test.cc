// Long combined scenario: multiple tables, joins, mash-up, snapshots,
// refresh, failures and a mixed workload interleaved — the "everything at
// once" test that exercises cross-feature interactions the per-feature
// suites cannot.

#include <gtest/gtest.h>

#include "core/outsourced_db.h"
#include "workload/generators.h"
#include "workload/query_mix.h"

namespace ssdb {
namespace {

TEST(Scenario, FullLifecycle) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();

  // 1. Two private tables sharing the eid domain, one public directory.
  TableSchema employees;
  employees.table_name = "Employees";
  employees.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      StringColumn("name", 8),
      IntColumn("salary", 0, 200000),
      IntColumn("dept", 0, 50),
  };
  TableSchema managers;
  managers.table_name = "Managers";
  managers.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("level", 0, 5),
  };
  ASSERT_TRUE(db->CreateTable(employees).ok());
  ASSERT_TRUE(db->CreateTable(managers).ok());

  NameGenerator names(1);
  Rng rng(2);
  std::vector<std::vector<Value>> emp_rows;
  for (int64_t i = 0; i < 400; ++i) {
    emp_rows.push_back({Value::Int(i), Value::Str(names.Next(8)),
                        Value::Int(rng.UniformInt(0, 200000)),
                        Value::Int(rng.UniformInt(0, 50))});
  }
  ASSERT_TRUE(db->Insert("Employees", emp_rows).ok());
  std::vector<std::vector<Value>> mgr_rows;
  for (int64_t i = 0; i < 40; ++i) {
    mgr_rows.push_back({Value::Int(i * 10), Value::Int(rng.UniformInt(0, 5))});
  }
  ASSERT_TRUE(db->Insert("Managers", mgr_rows).ok());

  std::vector<ColumnSpec> dir_cols = {
      IntColumn("dept", 0, 50, kCapExactMatch | kCapRange, "deptdir"),
      StringColumn("building", 8),
  };
  std::vector<std::vector<Value>> dir_rows;
  for (int64_t d = 0; d <= 50; ++d) {
    dir_rows.push_back({Value::Int(d), Value::Str(names.Next(8))});
  }
  ASSERT_TRUE(db->PublishPublicTable("Directory", dir_cols, dir_rows).ok());
  ASSERT_TRUE(db->SubscribePublicColumn("Directory", "dept").ok());

  // 2. Join + SQL + mash-up all answer.
  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";
  auto joined = db->Execute(jq);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->rows.size(), 40u);

  auto grouped = db->Execute(
      "SELECT SUM(salary) FROM Employees WHERE dept BETWEEN 0 AND 9 GROUP "
      "BY dept");
  ASSERT_TRUE(grouped.ok());
  EXPECT_GT(grouped->groups.size(), 0u);

  auto dept_of_emp0 = db->Execute(Query::Select("Employees")
                                      .Where(Eq("eid", Value::Int(0)))
                                      .Project({"dept"}));
  ASSERT_TRUE(dept_of_emp0.ok());
  ASSERT_EQ(dept_of_emp0->rows.size(), 1u);
  auto building = db->QueryPublic(
      "Directory", Eq("dept", Value::Int(dept_of_emp0->rows[0][0].AsInt())));
  ASSERT_TRUE(building.ok());
  EXPECT_EQ(building->rows.size(), 1u);

  // 3a. Full mixed workload (reads + writes) while healthy, on a table
  // matching the driver's schema.
  ASSERT_TRUE(
      db->CreateTable(EmployeeGenerator::EmployeesSchema("MixEmployees"))
          .ok());
  EmployeeGenerator mix_gen(9, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("MixEmployees", mix_gen.Rows(200)).ok());
  QueryMixDriver driver(db.get(), "MixEmployees", 3);
  Status mix_status = driver.RunOps(40);
  ASSERT_TRUE(mix_status.ok()) << mix_status.ToString();

  // 3b. Read-only mix with a corrupting provider: reads must stay
  // correct. (Writes are conservatively failed through a corrupting link
  // — the ACK cannot be trusted — so the read-only blend is the
  // operable mode during such an incident.)
  db->faults().Corrupt(3);
  MixRatios reads;
  reads.update = reads.insert = reads.erase = 0;
  QueryMixDriver read_driver(db.get(), "MixEmployees", 4, reads);
  Status read_status = read_driver.RunOps(20);
  EXPECT_TRUE(read_status.ok()) << read_status.ToString();
  db->faults().HealAll();

  // 4. Snapshot every provider, restore, refresh, and verify a stable
  // global invariant: COUNT(*) equals a full reconstruction count.
  for (size_t p = 0; p < 5; ++p) {
    Buffer snap;
    db->provider(p).SaveSnapshot(&snap);
    ASSERT_TRUE(db->provider(p).LoadSnapshot(snap.AsSlice()).ok());
  }
  ASSERT_TRUE(db->RefreshTable("Employees").ok());
  ASSERT_TRUE(db->RefreshTable("Managers").ok());

  auto count = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kCount));
  auto all = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(count.ok() && all.ok());
  EXPECT_EQ(count->count, all->rows.size());

  // Joins still work after refresh (det/op shares untouched).
  auto joined2 = db->Execute(jq);
  ASSERT_TRUE(joined2.ok()) << joined2.status().ToString();
  // The mixed workload may have updated/deleted employee rows that
  // managers reference, so just require internal consistency.
  for (const auto& row : joined2->rows) {
    EXPECT_EQ(row[0].AsInt(), row[joined2->join_left_columns].AsInt());
  }
}

}  // namespace
}  // namespace ssdb
