// Shard-group topology tests: Topology resolution and deprecated
// aliases, partition-key routing, scatter-gather equivalence with the
// 1-shard seed system, per-shard telemetry reconciliation, and fault
// isolation between shard groups.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/outsourced_db.h"
#include "core/topology.h"

namespace ssdb {
namespace {

TableSchema EmployeesSchema() {
  TableSchema schema;
  schema.table_name = "Employees";
  schema.columns = {
      StringColumn("name", 8),
      IntColumn("salary", 0, 1'000'000),
      IntColumn("dept", 0, 100),
  };
  return schema;
}

const std::vector<std::string>& Names() {
  static const std::vector<std::string> kNames = {
      "ALICE", "BOB",    "CAROL",  "DAVE",   "ERIN",   "FRANK",
      "GRACE", "HEIDI",  "IVAN",   "JOHN",   "KAREN",  "LARRY",
      "MALLORY", "NIA",  "OSCAR",  "PEGGY",  "QUINN",  "RUPERT",
      "SYBIL", "TRENT",  "URSULA", "VICTOR", "WENDY",  "XAVIER",
  };
  return kNames;
}

std::vector<std::vector<Value>> EmployeeRows() {
  std::vector<std::vector<Value>> rows;
  for (size_t i = 0; i < Names().size(); ++i) {
    rows.push_back({Value::Str(Names()[i]),
                    Value::Int(static_cast<int64_t>((i * 3137) % 90000 + 5000)),
                    Value::Int(static_cast<int64_t>(i % 5))});
  }
  // A second JOHN so exact matches return multiple rows.
  rows.push_back({Value::Str("JOHN"), Value::Int(42000), Value::Int(3)});
  return rows;
}

std::unique_ptr<OutsourcedDatabase> MakeSharded(
    size_t shards, size_t n_per, size_t k,
    Partitioner part = Partitioner::kHash, size_t fanout_threads = 1) {
  OutsourcedDbOptions options;
  options.topology = Topology(shards, n_per, k, part);
  options.fanout_threads = fanout_threads;
  auto db = OutsourcedDatabase::Create(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

void LoadEmployees(OutsourcedDatabase* db) {
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  std::vector<std::vector<Value>> rows = EmployeeRows();
  // Most rows arrive through the batched bulk path, the tail through
  // per-row inserts, so both write paths shard identically.
  std::vector<std::vector<Value>> bulk(rows.begin(), rows.end() - 3);
  std::vector<std::vector<Value>> tail(rows.end() - 3, rows.end());
  ASSERT_TRUE(db->BulkLoad("Employees", bulk).ok());
  const Status st = db->Insert("Employees", tail);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

/// Canonical, order-independent rendering of a result for equivalence
/// comparisons across shard counts.
std::string Fingerprint(const QueryResult& r) {
  std::string out = "count=" + std::to_string(r.count) +
                    " agg_i=" + std::to_string(r.aggregate_int) +
                    " agg_d=" + std::to_string(r.aggregate_double) +
                    " jlc=" + std::to_string(r.join_left_columns);
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    std::string s;
    for (const Value& v : r.rows[i]) s += v.ToString() + ",";
    rows.emplace_back(i < r.row_ids.size() ? r.row_ids[i] : 0, std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  for (const auto& [id, s] : rows) {
    out += "\n" + std::to_string(id) + ":" + s;
  }
  for (const GroupResult& g : r.groups) {
    out += "\nG " + g.key.ToString() + " sum=" + std::to_string(g.sum) +
           " n=" + std::to_string(g.count) +
           " avg=" + std::to_string(g.average);
  }
  return out;
}

/// Every query class of §V.A, routed and unrouted.
std::vector<Query> QueryBattery() {
  std::vector<Query> qs;
  qs.push_back(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  qs.push_back(
      Query::Select("Employees").Where(Eq("name", Value::Str("NOBODY"))));
  qs.push_back(Query::Select("Employees")
                   .Where(Between("salary", Value::Int(10000),
                                  Value::Int(40000))));
  qs.push_back(Query::Select("Employees").Where(Prefix("name", "A")));
  qs.push_back(Query::Select("Employees"));
  qs.push_back(Query::Select("Employees").Aggregate(AggregateOp::kCount));
  qs.push_back(
      Query::Select("Employees").Aggregate(AggregateOp::kSum, "salary"));
  qs.push_back(Query::Select("Employees")
                   .Where(Between("salary", Value::Int(5000),
                                  Value::Int(60000)))
                   .Aggregate(AggregateOp::kAvg, "salary"));
  qs.push_back(
      Query::Select("Employees").Aggregate(AggregateOp::kMin, "salary"));
  qs.push_back(
      Query::Select("Employees").Aggregate(AggregateOp::kMax, "salary"));
  qs.push_back(
      Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"));
  qs.push_back(Query::Select("Employees")
                   .Project({"name"})
                   .Aggregate(AggregateOp::kMin, "salary"));
  qs.push_back(Query::Select("Employees")
                   .Project({"name"})
                   .Aggregate(AggregateOp::kMedian, "salary"));
  qs.push_back(Query::Select("Employees")
                   .Aggregate(AggregateOp::kSum, "salary")
                   .GroupBy("dept"));
  qs.push_back(Query::Select("Employees")
                   .WhereAny({Eq("name", Value::Str("JOHN")),
                              Eq("name", Value::Str("ALICE")),
                              Prefix("name", "B")}));
  qs.push_back(Query::Select("Employees").Where(Eq("dept", Value::Int(2))));
  qs.push_back(Query::Select("Employees")
                   .Where(Eq("name", Value::Str("JOHN")))
                   .Aggregate(AggregateOp::kSum, "salary"));
  return qs;
}

size_t ShardOfName(const std::string& name, size_t shards,
                   Partitioner part = Partitioner::kHash) {
  const ColumnSpec key = StringColumn("name", 8);
  auto code = key.EncodeToCode(Value::Str(name));
  auto dom = key.CodeDomain();
  EXPECT_TRUE(code.ok() && dom.ok());
  return ShardForCode(part, shards, *code, *dom);
}

TEST(ShardTopology, ResolvesExplicitTopologyAndDeprecatedAliases) {
  // The deprecated flat fields build the seed 1-shard shape.
  {
    OutsourcedDbOptions options;
    options.n = 4;
    options.client.k = 2;
    auto db = OutsourcedDatabase::Create(options);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->shards(), 1u);
    EXPECT_EQ((*db)->providers_per_shard(), 4u);
    EXPECT_EQ((*db)->topology().threshold, 2u);
    EXPECT_EQ((*db)->n(), 4u);
    EXPECT_EQ((*db)->k(), 2u);
  }
  // An explicit Topology wins and the alias reports the total.
  {
    OutsourcedDbOptions options;
    options.topology = Topology(2, 3, 2);
    auto db = OutsourcedDatabase::Create(options);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->shards(), 2u);
    EXPECT_EQ((*db)->providers_per_shard(), 3u);
    EXPECT_EQ((*db)->n(), 6u);
    EXPECT_EQ((*db)->provider(0).name(), "S1-DAS1");
    EXPECT_EQ((*db)->provider(5).name(), "S2-DAS3");
  }
  // shards set with providers_per_shard = 0: the flat n splits evenly.
  {
    OutsourcedDbOptions options;
    options.n = 8;
    options.client.k = 2;
    options.topology.shards = 2;
    auto db = OutsourcedDatabase::Create(options);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->providers_per_shard(), 4u);
  }
  // Indivisible n and k > providers_per_shard are rejected up front.
  {
    OutsourcedDbOptions options;
    options.n = 7;
    options.topology.shards = 2;
    EXPECT_FALSE(OutsourcedDatabase::Create(options).ok());
  }
  {
    OutsourcedDbOptions options;
    options.topology = Topology(2, 3, 5);
    EXPECT_FALSE(OutsourcedDatabase::Create(options).ok());
  }
}

TEST(ShardTopology, OneShardTopologyIsByteIdenticalToTheSeedOptions) {
  OutsourcedDbOptions flat;
  flat.n = 4;
  flat.client.k = 2;
  flat.fanout_threads = 1;
  auto a = OutsourcedDatabase::Create(flat);
  ASSERT_TRUE(a.ok());

  OutsourcedDbOptions topo;
  topo.topology = Topology(1, 4, 2);
  topo.fanout_threads = 1;
  auto b = OutsourcedDatabase::Create(topo);
  ASSERT_TRUE(b.ok());

  for (OutsourcedDatabase* db : {a->get(), b->get()}) {
    LoadEmployees(db);
  }
  for (const Query& q : QueryBattery()) {
    auto ra = (*a)->Execute(q);
    auto rb = (*b)->Execute(q);
    ASSERT_EQ(ra.ok(), rb.ok());
    if (!ra.ok()) continue;
    EXPECT_EQ(Fingerprint(*ra), Fingerprint(*rb));
  }
  // Identical byte streams, virtual clock and telemetry export.
  const ChannelStats sa = (*a)->network_stats();
  const ChannelStats sb = (*b)->network_stats();
  EXPECT_EQ(sa.calls, sb.calls);
  EXPECT_EQ(sa.failures, sb.failures);
  EXPECT_EQ(sa.bytes_sent, sb.bytes_sent);
  EXPECT_EQ(sa.bytes_received, sb.bytes_received);
  EXPECT_EQ((*a)->simulated_time_us(), (*b)->simulated_time_us());
  EXPECT_EQ((*a)->metrics().ExportPrometheus(),
            (*b)->metrics().ExportPrometheus());
}

TEST(ShardRouting, EquivalentResultsAcrossShardCountsAndFanoutThreads) {
  // The reference run: the seed system.
  auto ref = MakeSharded(1, 4, 2, Partitioner::kHash, 1);
  LoadEmployees(ref.get());
  std::vector<std::string> expected;
  for (const Query& q : QueryBattery()) {
    auto r = ref->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(Fingerprint(*r));
  }

  struct Config {
    size_t shards;
    Partitioner part;
  };
  const Config configs[] = {{2, Partitioner::kHash},
                            {4, Partitioner::kHash},
                            {2, Partitioner::kRange},
                            {4, Partitioner::kRange}};
  for (const Config& cfg : configs) {
    std::map<size_t, uint64_t> clock_by_fanout;
    for (size_t fanout : {1u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(cfg.shards) + " partitioner=" +
                   PartitionerName(cfg.part) + " fanout=" +
                   std::to_string(fanout));
      auto db = MakeSharded(cfg.shards, 4, 2, cfg.part, fanout);
      LoadEmployees(db.get());
      const std::vector<Query> battery = QueryBattery();
      for (size_t i = 0; i < battery.size(); ++i) {
        auto r = db->Execute(battery[i]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(Fingerprint(*r), expected[i]) << "query " << i;
      }
      // Updates and deletes shard correctly too.
      auto updated = db->Update("Employees",
                                {Eq("name", Value::Str("JOHN"))}, "salary",
                                Value::Int(77000));
      ASSERT_TRUE(updated.ok()) << updated.status().ToString();
      EXPECT_EQ(updated.value(), 2u);
      auto deleted = db->Delete("Employees", {Eq("dept", Value::Int(4))});
      ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
      auto after = db->Execute(Query::Select("Employees"));
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(after->rows.size(), EmployeeRows().size() - deleted.value());
      // Deterministic for any fan-out thread count: the virtual clock of
      // the whole run is identical.
      clock_by_fanout[fanout] = db->simulated_time_us();
    }
    EXPECT_EQ(clock_by_fanout[1], clock_by_fanout[4]);
    EXPECT_EQ(clock_by_fanout[1], clock_by_fanout[8]);
  }
}

TEST(ShardRouting, ExactMatchContactsExactlyOneShardGroup) {
  const size_t kShards = 4;
  auto db = MakeSharded(kShards, 3, 2);
  LoadEmployees(db.get());
  const size_t owner = ShardOfName("JOHN", kShards);

  std::vector<ChannelStats> before;
  for (size_t s = 0; s < kShards; ++s) before.push_back(db->shard_stats(s).value());
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  for (size_t s = 0; s < kShards; ++s) {
    const uint64_t calls = db->shard_stats(s)->calls - before[s].calls;
    if (s == owner) {
      EXPECT_GT(calls, 0u) << "owning shard group was not contacted";
    } else {
      EXPECT_EQ(calls, 0u) << "shard group " << s
                           << " contacted for a routed exact match";
    }
  }
  // The trace and EXPLAIN both surface the routing.
  for (const PlanNodeTrace& node : r->trace.nodes) {
    if (!node.legs.empty()) {
      EXPECT_EQ(node.shard, static_cast<int>(owner));
    }
  }
  auto explain = db->Explain(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("routed to shard group " + std::to_string(owner)),
            std::string::npos)
      << *explain;
}

TEST(ShardRouting, RangePartitioningPrunesRangeScans) {
  const size_t kShards = 4;
  auto db = MakeSharded(kShards, 3, 2, Partitioner::kRange);
  LoadEmployees(db.get());

  // 'A%' names occupy the first sliver of the base-27 key domain: under
  // range partitioning the scan prunes to the edge shard group(s).
  std::vector<ChannelStats> before;
  for (size_t s = 0; s < kShards; ++s) before.push_back(db->shard_stats(s).value());
  const Query q = Query::Select("Employees").Where(Prefix("name", "A"));
  auto r = db->Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);  // ALICE
  size_t contacted = 0;
  for (size_t s = 0; s < kShards; ++s) {
    if (db->shard_stats(s)->calls > before[s].calls) contacted++;
  }
  EXPECT_EQ(contacted, 1u) << "prefix scan was not pruned";

  auto explain = db->Explain(q);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("routed to shard group 0 of 4"), std::string::npos)
      << *explain;

  // An unrouted scan names every group in EXPLAIN.
  auto scatter = db->Explain(Query::Select("Employees"));
  ASSERT_TRUE(scatter.ok());
  EXPECT_NE(scatter->find("ShardMerge[4 of 4 shard groups"),
            std::string::npos)
      << *scatter;
  EXPECT_NE(scatter->find("shard groups: 4 of 4 routed {0,1,2,3}"),
            std::string::npos)
      << *scatter;
}

TEST(ShardTelemetry, TracesReconcileWithChannelStatsAndShardSeries) {
  for (size_t fanout : {1u, 4u, 8u}) {
    SCOPED_TRACE("fanout=" + std::to_string(fanout));
    const size_t kShards = 2, kPer = 4;
    auto db = MakeSharded(kShards, kPer, 2, Partitioner::kHash, fanout);
    LoadEmployees(db.get());
    db->ResetAllStats();
    std::vector<ChannelStats> before;
    for (size_t s = 0; s < kShards; ++s) before.push_back(db->shard_stats(s).value());
    const uint64_t clock_before = db->simulated_time_us();

    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(5000),
                                            Value::Int(95000))));
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    // The trace's clock total IS the virtual-clock delta.
    EXPECT_EQ(r->trace.total_clock_us(),
              db->simulated_time_us() - clock_before);

    // Per-provider trace bytes reconcile with the channel stats.
    const auto per_provider = r->trace.PerProviderBytes();
    for (const auto& [provider, bytes] : per_provider) {
      EXPECT_EQ(bytes.first, db->network().stats(provider).bytes_sent);
      EXPECT_EQ(bytes.second, db->network().stats(provider).bytes_received);
    }

    // Per-shard: the legs of each group's nodes sum to the group's
    // ChannelStats delta, which the ssdb_shard_* series mirror exactly.
    for (size_t s = 0; s < kShards; ++s) {
      uint64_t sent = 0, received = 0, legs = 0;
      for (const PlanNodeTrace& node : r->trace.nodes) {
        if (node.shard != static_cast<int>(s)) continue;
        sent += node.bytes_sent;
        received += node.bytes_received;
        legs += node.legs.size();
      }
      const ChannelStats delta_base = before[s];
      const ChannelStats now = db->shard_stats(s).value();
      EXPECT_EQ(sent, now.bytes_sent - delta_base.bytes_sent);
      EXPECT_EQ(received, now.bytes_received - delta_base.bytes_received);
      EXPECT_EQ(legs, now.calls - delta_base.calls);
      const MetricLabels labels = {{"shard", std::to_string(s)}};
      EXPECT_EQ(db->metrics()
                    .GetCounter("ssdb_shard_requests_total", labels)
                    ->value(),
                now.calls);
      EXPECT_EQ(db->metrics()
                    .GetCounter("ssdb_shard_bytes_sent_total", labels)
                    ->value(),
                now.bytes_sent);
      EXPECT_EQ(db->metrics()
                    .GetCounter("ssdb_shard_bytes_received_total", labels)
                    ->value(),
                now.bytes_received);
    }
  }
}

TEST(ShardFaults, FaultsInOneGroupDoNotPerturbOtherGroupsAnswers) {
  const size_t kShards = 2, kPer = 4;
  const size_t owner = ShardOfName("JOHN", kShards);
  const size_t other = 1 - owner;

  // Fault-free reference.
  auto clean = MakeSharded(kShards, kPer, 2);
  LoadEmployees(clean.get());
  const Query routed =
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN")));
  auto clean_routed = clean->Execute(routed);
  ASSERT_TRUE(clean_routed.ok());
  auto clean_count =
      clean->Execute(Query::Select("Employees").Aggregate(AggregateOp::kCount));
  ASSERT_TRUE(clean_count.ok());

  // Same deployment with one provider of the *other* group down.
  auto faulty = MakeSharded(kShards, kPer, 2);
  LoadEmployees(faulty.get());
  faulty->faults().Down(other * kPer + 1);

  auto faulty_routed = faulty->Execute(routed);
  ASSERT_TRUE(faulty_routed.ok()) << faulty_routed.status().ToString();
  EXPECT_EQ(Fingerprint(*faulty_routed), Fingerprint(*clean_routed));
  // Not just the answer: the routed query's byte streams and clock charge
  // are untouched by the other group's fault.
  EXPECT_EQ(faulty_routed->trace.PerProviderBytes(),
            clean_routed->trace.PerProviderBytes());
  EXPECT_EQ(faulty_routed->trace.total_clock_us(),
            clean_routed->trace.total_clock_us());

  // A scatter query still answers correctly: the faulted group fills its
  // quorum from its spare providers.
  auto faulty_count = faulty->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kCount));
  ASSERT_TRUE(faulty_count.ok()) << faulty_count.status().ToString();
  EXPECT_EQ(faulty_count->aggregate_int, clean_count->aggregate_int);
}

TEST(ShardWrites, UpdateMovingThePartitionKeyAcrossGroupsIsRejected) {
  const size_t kShards = 2;
  auto db = MakeSharded(kShards, 3, 2);
  LoadEmployees(db.get());

  // Find two loaded names owned by different groups.
  std::string from, to;
  for (const std::string& name : Names()) {
    if (from.empty()) {
      from = name;
    } else if (ShardOfName(name, kShards) != ShardOfName(from, kShards)) {
      to = name;
      break;
    }
  }
  ASSERT_FALSE(to.empty());
  auto moved = db->Update("Employees", {Eq("name", Value::Str(from))}, "name",
                          Value::Str(to));
  EXPECT_TRUE(moved.status().IsNotSupported()) << moved.status().ToString();
  EXPECT_NE(moved.status().message().find("partition key"), std::string::npos)
      << moved.status().ToString();

  // A key rewrite within the owning group still works.
  std::string same;
  for (const char* candidate : {"AAAA", "AAAB", "AAAC", "AAAD", "AAAE",
                                "AAAF", "AAAG", "AAAH"}) {
    if (ShardOfName(candidate, kShards) == ShardOfName(from, kShards)) {
      same = candidate;
      break;
    }
  }
  ASSERT_FALSE(same.empty());
  auto renamed = db->Update("Employees", {Eq("name", Value::Str(from))},
                            "name", Value::Str(same));
  ASSERT_TRUE(renamed.ok()) << renamed.status().ToString();
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str(same))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), renamed.value());
}

TEST(ShardJoins, JoinsNeedThePartitionKeyOnBothSidesAndStayEquivalent) {
  // Cross-table joins need an explicitly shared domain on the join
  // column (client-qualified defaults never collide across tables).
  TableSchema people;
  people.table_name = "People";
  people.columns = {
      StringColumn("name", 8, kCapExactMatch | kCapRange, "person"),
      IntColumn("salary", 0, 1'000'000)};
  TableSchema badges;
  badges.table_name = "Badges";
  badges.columns = {
      StringColumn("name", 8, kCapExactMatch | kCapRange, "person"),
      IntColumn("badge", 0, 1000)};
  const std::vector<std::vector<Value>> people_rows = {
      {Value::Str("JOHN"), Value::Int(20000)},
      {Value::Str("ALICE"), Value::Int(35000)},
      {Value::Str("BOB"), Value::Int(50000)},
      {Value::Str("WENDY"), Value::Int(61000)},
  };
  const std::vector<std::vector<Value>> badge_rows = {
      {Value::Str("JOHN"), Value::Int(7)},
      {Value::Str("ALICE"), Value::Int(11)},
      {Value::Str("ZARA"), Value::Int(13)},
  };

  JoinQuery jq;
  jq.left_table = "People";
  jq.left_column = "name";
  jq.right_table = "Badges";
  jq.right_column = "name";

  auto load = [&](OutsourcedDatabase* db) {
    ASSERT_TRUE(db->CreateTable(people).ok());
    ASSERT_TRUE(db->CreateTable(badges).ok());
    ASSERT_TRUE(db->Insert("People", people_rows).ok());
    ASSERT_TRUE(db->Insert("Badges", badge_rows).ok());
  };

  auto ref = MakeSharded(1, 4, 2);
  load(ref.get());
  auto ref_join = ref->Execute(jq);
  ASSERT_TRUE(ref_join.ok()) << ref_join.status().ToString();
  EXPECT_EQ(ref_join->rows.size(), 2u);

  auto db = MakeSharded(2, 4, 2);
  load(db.get());
  auto sharded_join = db->Execute(jq);
  ASSERT_TRUE(sharded_join.ok()) << sharded_join.status().ToString();
  EXPECT_EQ(Fingerprint(*sharded_join), Fingerprint(*ref_join));

  // A join column that is not the partition key cannot run co-located.
  TableSchema flipped;
  flipped.table_name = "Flipped";
  flipped.columns = {
      IntColumn("badge", 0, 1000),
      StringColumn("name", 8, kCapExactMatch | kCapRange, "person")};
  ASSERT_TRUE(db->CreateTable(flipped).ok());
  JoinQuery bad = jq;
  bad.right_table = "Flipped";
  auto rejected = db->Execute(bad);
  EXPECT_TRUE(rejected.status().IsNotSupported())
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("partition key"),
            std::string::npos);
}

TEST(TopologyValidation, RejectsZeroShards) {
  Topology t(/*m=*/0, /*n_per=*/3, /*k=*/2);
  const Status st = ValidateTopology(t);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("shards"), std::string::npos);
}

TEST(TopologyValidation, RejectsThresholdAboveGroupSize) {
  Topology t(/*m=*/2, /*n_per=*/3, /*k=*/4);
  EXPECT_TRUE(ValidateTopology(t).IsInvalidArgument());

  // The same misconfiguration surfaces from the deployment factory.
  OutsourcedDbOptions options;
  options.topology = Topology(2, 3, 4);
  auto db = OutsourcedDatabase::Create(options);
  EXPECT_TRUE(db.status().IsInvalidArgument()) << db.status().ToString();
}

TEST(TopologyValidation, RejectsZeroProvidersPerShardAndOversizedGroups) {
  Topology zero(/*m=*/2, /*n_per=*/0, /*k=*/1);
  EXPECT_TRUE(ValidateTopology(zero).IsInvalidArgument());
  Topology oversized(/*m=*/1, /*n_per=*/256, /*k=*/2);
  EXPECT_TRUE(ValidateTopology(oversized).IsInvalidArgument());
}

TEST(TopologyValidation, RangePartitionerWithStringKeyMatchesSingleShard) {
  // The partition key is the schema's FIRST column, here a string: range
  // partitioning splits the lexicographic base-27 code domain, not an
  // integer key. The sharded deployment must answer every query class
  // exactly like the 1-shard seed system.
  auto sharded = MakeSharded(2, 3, 2, Partitioner::kRange);
  auto flat = MakeSharded(1, 3, 2);
  LoadEmployees(sharded.get());
  LoadEmployees(flat.get());
  // Both groups really hold a slice of the rows (the names span A..X).
  EXPECT_GT(sharded->provider(0).num_rows(), 0u);
  EXPECT_GT(sharded->provider(3).num_rows(), 0u);
  for (const Query& q : QueryBattery()) {
    auto rs = sharded->Execute(q);
    auto rf = flat->Execute(q);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rf.ok()) << rf.status().ToString();
    EXPECT_EQ(Fingerprint(*rs), Fingerprint(*rf));
  }
}

TEST(ShardTelemetry, ShardStatsOutOfRangeReturnsInvalidArgument) {
  auto db = MakeSharded(2, 3, 2);
  ASSERT_TRUE(db->shard_stats(0).ok());
  ASSERT_TRUE(db->shard_stats(1).ok());
  const auto out_of_range = db->shard_stats(2);
  EXPECT_TRUE(out_of_range.status().IsInvalidArgument())
      << out_of_range.status().ToString();
  EXPECT_NE(out_of_range.status().message().find("out of range"),
            std::string::npos);
  EXPECT_TRUE(db->shard_stats(~size_t{0}).status().IsInvalidArgument());
}

TEST(ShardTelemetry, ResetAllStatsClearsTheScoreboard) {
  auto db = MakeSharded(1, 4, 2);
  LoadEmployees(db.get());
  ASSERT_TRUE(db->Execute(Query::Select("Employees")).ok());
  // Quorum legs folded health samples into the scoreboard.
  EXPECT_GT(db->scoreboard().Snapshot(0).samples, 0u);
  db->ResetAllStats();
  const auto entry = db->scoreboard().Snapshot(0);
  EXPECT_EQ(entry.samples, 0u);
  EXPECT_EQ(entry.ewma_us, 0.0);
  EXPECT_EQ(entry.failures, 0u);
}

}  // namespace
}  // namespace ssdb
