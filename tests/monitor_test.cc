// Monitor suite (separate executable, CTest label "traffic").
//
// Covers the continuous monitor end to end: unit semantics first
// (windowing, ring eviction, alert fire/resolve state machine, top-K
// slow-query ranking, empty-window quantiles), then the harness wiring:
// monitored traffic runs whose windowed series, billing, alerts and slow
// logs are bit-identical across fanout thread counts and same-seed runs
// (including a kill/restart drill over durable storage), and meter
// reconciliation — Σ tenants == "_all" == the registry's client-charged
// `ssdb_meter_*` totals == the wire's ChannelStats for the run.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "obs/monitor.h"
#include "traffic/traffic.h"

namespace ssdb {
namespace {

// ---------------------------------------------------------------------------
// Unit level: a Monitor driven by hand (null registry — delta inputs read
// zero and no self-series are charged).

RequestObservation Obs(const std::string& tenant, uint32_t seq,
                       uint64_t arrival_us, uint64_t latency_us = 10,
                       uint64_t service_us = 10) {
  RequestObservation obs;
  obs.tenant = tenant;
  obs.seq = seq;
  obs.arrival_us = arrival_us;
  obs.cls = RequestClass::kCompleted;
  obs.latency_us = latency_us;
  obs.queue_delay_us = latency_us - service_us;
  obs.service_us = service_us;
  obs.meter.requests = 1;
  obs.meter.bytes_sent = 100;
  obs.meter.bytes_received = 200;
  obs.meter.rounds = 1;
  obs.meter.clock_us = service_us;
  return obs;
}

TEST(MonitorUnit, WindowsCloseOnBoundariesAndFinishClosesPartial) {
  MonitorOptions options;
  options.window_us = 1000;
  Monitor monitor(nullptr, options);
  monitor.Observe(Obs("a", 0, 10));
  monitor.Observe(Obs("a", 1, 990));
  monitor.Observe(Obs("a", 2, 1000));  // first arrival of window 1
  monitor.Finish(2500);                // closes window 1 and partial [2000,2500)

  const MonitorReport r = monitor.Report();
  ASSERT_EQ(r.windows.size(), 3u);
  EXPECT_EQ(r.windows_total, 3u);
  EXPECT_EQ(r.windows[0].start_us, 0u);
  EXPECT_EQ(r.windows[0].end_us, 1000u);
  EXPECT_EQ(r.windows[0].completed, 2u);
  EXPECT_EQ(r.windows[1].completed, 1u);
  // The partial final window carries the Finish time as its end.
  EXPECT_EQ(r.windows[2].start_us, 2000u);
  EXPECT_EQ(r.windows[2].end_us, 2500u);
  EXPECT_EQ(r.windows[2].completed, 0u);
  // Billing saw every request regardless of window shape.
  EXPECT_EQ(r.total.meter.requests, 3u);
  EXPECT_EQ(r.total.meter.bytes_sent, 300u);
}

TEST(MonitorUnit, RingEvictsOldestWindowsButBillingIsUnaffected) {
  MonitorOptions options;
  options.window_us = 100;
  options.ring_capacity = 2;
  Monitor monitor(nullptr, options);
  for (uint32_t i = 0; i < 5; ++i) {
    monitor.Observe(Obs("a", i, i * 100 + 1));  // one request per window
  }
  monitor.Finish(500);
  const MonitorReport r = monitor.Report();
  EXPECT_EQ(r.windows_total, 5u);
  EXPECT_EQ(r.windows_dropped, 3u);
  ASSERT_EQ(r.windows.size(), 2u);
  EXPECT_EQ(r.windows.front().index, 3u);  // oldest surviving window
  EXPECT_EQ(r.windows.back().index, 4u);
  EXPECT_EQ(r.total.meter.requests, 5u);  // eviction never un-bills
  ASSERT_EQ(r.billing.size(), 1u);
  EXPECT_EQ(r.billing[0].meter.requests, 5u);
}

TEST(MonitorUnit, CostModelIsLinearInMeterFigures) {
  CostModel cost;  // defaults: a=1000, b=2, c=1
  EXPECT_EQ(cost.Cost(0, 0, 0), 0u);
  EXPECT_EQ(cost.Cost(1, 0, 0), 1000u);
  EXPECT_EQ(cost.Cost(2, 300, 50), 2 * 1000u + 2 * 300u + 50u);
}

TEST(MonitorUnit, AlertFiresAfterConsecutiveBreachesAndResolves) {
  MonitorOptions options;
  options.window_us = 100;
  options.rules = {{"p99_burn", AlertInput::kLatencyP99Us, /*threshold=*/50,
                    /*for_windows=*/2}};
  Monitor monitor(nullptr, options);
  // Window 0: breach #1 (latency 200 > 50) — no event yet.
  monitor.Observe(Obs("a", 0, 10, /*latency_us=*/200, /*service_us=*/200));
  // Window 1: breach #2 — fires at this window's close.
  monitor.Observe(Obs("a", 1, 110, /*latency_us=*/200, /*service_us=*/200));
  // Window 2: back under the SLO — resolves.
  monitor.Observe(Obs("a", 2, 210, /*latency_us=*/1, /*service_us=*/1));
  monitor.Finish(400);

  const MonitorReport r = monitor.Report();
  ASSERT_EQ(r.alerts.size(), 2u);
  EXPECT_EQ(r.alerts[0].rule, "p99_burn");
  EXPECT_TRUE(r.alerts[0].firing);
  EXPECT_EQ(r.alerts[0].window_end_us, 200u);  // close of window 1
  EXPECT_GT(r.alerts[0].value, 50u);
  EXPECT_FALSE(r.alerts[1].firing);
  EXPECT_EQ(r.alerts[1].window_end_us, 300u);  // close of window 2
}

TEST(MonitorUnit, EmptyGapWindowsCloseAndResolveAlerts) {
  MonitorOptions options;
  options.window_us = 100;
  options.rules = {{"p99_burn", AlertInput::kLatencyP99Us, 50, 1}};
  Monitor monitor(nullptr, options);
  monitor.Observe(Obs("a", 0, 10, 200, 200));  // fires at window 0 close
  // Quiet period: the next arrival is four windows later; the empty gap
  // windows must close (and the first of them resolves the alert).
  monitor.Observe(Obs("a", 1, 410, 1, 1));
  monitor.Finish(500);

  const MonitorReport r = monitor.Report();
  EXPECT_EQ(r.windows_total, 5u);
  ASSERT_EQ(r.alerts.size(), 2u);
  EXPECT_TRUE(r.alerts[0].firing);
  EXPECT_EQ(r.alerts[0].window_end_us, 100u);
  EXPECT_FALSE(r.alerts[1].firing);
  EXPECT_EQ(r.alerts[1].window_end_us, 200u);  // first empty gap window
}

TEST(MonitorUnit, RejectedRatioRuleUsesPermilleOfOffered) {
  MonitorOptions options;
  options.window_us = 1000;
  options.rules = {
      {"reject_ratio", AlertInput::kRejectedRatioPermille, 100, 1}};
  Monitor monitor(nullptr, options);
  for (uint32_t i = 0; i < 8; ++i) monitor.Observe(Obs("a", i, 10 + i));
  RequestObservation rejected;
  rejected.tenant = "a";
  rejected.seq = 8;
  rejected.arrival_us = 20;
  rejected.cls = RequestClass::kRejected;
  monitor.Observe(rejected);
  monitor.Observe(rejected);  // 2 of 10 = 200 permille > 100
  monitor.Finish(1000);
  const MonitorReport r = monitor.Report();
  ASSERT_EQ(r.alerts.size(), 1u);
  EXPECT_TRUE(r.alerts[0].firing);
  EXPECT_EQ(r.alerts[0].value, 200u);
}

TEST(MonitorUnit, SlowLogKeepsTopKByServiceWithDeterministicTies) {
  MonitorOptions options;
  options.window_us = 1000;
  options.slow_k = 2;
  Monitor monitor(nullptr, options);
  monitor.Observe(Obs("a", 0, 1, 30, 30));
  monitor.Observe(Obs("a", 1, 2, 50, 50));
  monitor.Observe(Obs("b", 0, 3, 50, 50));  // ties lose to earlier arrival
  monitor.Observe(Obs("a", 2, 4, 40, 40));
  monitor.Observe(Obs("a", 3, 5, 10, 10));
  monitor.Finish(1000);
  const MonitorReport r = monitor.Report();
  ASSERT_EQ(r.windows.size(), 1u);
  const std::vector<SlowQuery>& slow = r.windows[0].slow;
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].tenant, "a");
  EXPECT_EQ(slow[0].seq, 1u);
  EXPECT_EQ(slow[0].service_us, 50u);
  EXPECT_EQ(slow[1].tenant, "b");
  EXPECT_EQ(slow[1].seq, 0u);
}

TEST(MonitorUnit, EmptyWindowQuantilesAreZero) {
  MonitorOptions options;
  options.window_us = 100;
  Monitor monitor(nullptr, options);
  RequestObservation rejected;
  rejected.tenant = "a";
  rejected.arrival_us = 10;
  rejected.cls = RequestClass::kRejected;
  monitor.Observe(rejected);  // offered but no completions
  monitor.Finish(100);
  const MonitorReport r = monitor.Report();
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_EQ(r.windows[0].offered, 1u);
  EXPECT_EQ(r.windows[0].completed, 0u);
  EXPECT_EQ(r.windows[0].latency_p50_us, 0u);
  EXPECT_EQ(r.windows[0].latency_p99_us, 0u);
  EXPECT_EQ(r.windows[0].queue_delay_p99_us, 0u);
}

// ---------------------------------------------------------------------------
// Harness level: monitored traffic runs against a real deployment.

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t fanout_threads = 1) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.fanout_threads = fanout_threads;
  auto db = OutsourcedDatabase::Create(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

std::vector<TenantSpec> TwoTenants(double qps = 40.0) {
  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "alpha";
  tenants[0].rows = 32;
  tenants[0].requests = 30;
  tenants[0].arrival_qps = qps;
  tenants[1].name = "beta";
  tenants[1].rows = 24;
  tenants[1].requests = 30;
  tenants[1].arrival_qps = qps;
  return tenants;
}

TrafficOptions MonitoredOptions() {
  TrafficOptions options;
  options.monitor = true;
  options.monitor_options.window_us = 200000;  // 200ms windows
  options.monitor_options.slow_k = 3;
  options.monitor_options.rules = DefaultAlertRules(/*p99_slo_us=*/500000);
  return options;
}

Result<TrafficReport> RunOnce(OutsourcedDatabase* db,
                              std::vector<TenantSpec> tenants,
                              TrafficOptions options) {
  TrafficHarness harness(db, std::move(tenants), options);
  Status setup = harness.Setup();
  if (!setup.ok()) return setup;
  return harness.Run();
}

TEST(MonitorDeterminism, ExportBitIdenticalAcrossFanoutThreadCounts) {
  std::string first;
  for (size_t threads : {1, 4, 8}) {
    auto db = MakeDb(threads);
    auto report = RunOnce(db.get(), TwoTenants(), MonitoredOptions());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.value().monitored);
    EXPECT_GT(report.value().monitor.windows_total, 0u);
    const std::string json = report.value().ExportJson();
    EXPECT_NE(json.find("\"monitor\""), std::string::npos);
    if (first.empty()) {
      first = json;
    } else {
      EXPECT_EQ(json, first) << "fanout_threads=" << threads;
    }
  }
}

TEST(MonitorDeterminism, ExportBitIdenticalAcrossSameSeedRuns) {
  auto db1 = MakeDb();
  auto db2 = MakeDb();
  auto r1 = RunOnce(db1.get(), TwoTenants(), MonitoredOptions());
  auto r2 = RunOnce(db2.get(), TwoTenants(), MonitoredOptions());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().ExportJson(), r2.value().ExportJson());
  EXPECT_EQ(r1.value().monitor.ExportJson(), r2.value().monitor.ExportJson());
}

TEST(MonitorDeterminism, KillRestartDrillMonitorIsReproducible) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ssdb_monitor_drill").string();
  std::filesystem::remove_all(dir);
  auto make_durable = [&](const std::string& sub) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    options.fanout_threads = 1;
    options.storage.backend = StorageOptions::Backend::kDurable;
    options.storage.dir = dir + "/" + sub;
    auto db = OutsourcedDatabase::Create(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  };

  // Same kill/restart schedule twice: the monitored export — windows,
  // metered bytes, billing, alerts, slow log — must reproduce exactly.
  std::string first;
  for (const std::string sub : {"run1", "run2"}) {
    auto db = make_durable(sub);
    OutsourcedDatabase* raw = db.get();
    TrafficOptions options = MonitoredOptions();
    options.exec_batch = false;
    options.before_request = [raw](size_t index) {
      if (index == 20) {
        raw->faults().Kill(1);
      } else if (index == 40) {
        Status restarted = raw->faults().Restart(1);
        EXPECT_TRUE(restarted.ok()) << restarted.ToString();
      }
    };
    auto report = RunOnce(raw, TwoTenants(), options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().global.failed, 0u);
    ASSERT_TRUE(report.value().monitored);
    const std::string json = report.value().ExportJson();
    if (first.empty()) {
      first = json;
    } else {
      EXPECT_EQ(json, first);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(MonitorReconciliation, MeterMatchesRegistryWindowsAndWire) {
  auto db = MakeDb();
  TrafficHarness harness(db.get(), TwoTenants(), [] {
    TrafficOptions options = MonitoredOptions();
    options.exec_batch = false;  // reads charge their own envelope rounds
    return options;
  }());
  ASSERT_TRUE(harness.Setup().ok());
  // Split Setup traffic from Run traffic on the wire.
  const ChannelStats before = db->network_stats();
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const TrafficReport& r = report.value();
  ASSERT_TRUE(r.monitored);
  ASSERT_EQ(r.global.failed, 0u);

  // Billing: Σ tenants == "_all" total, figure by figure.
  MeterSample tenant_sum;
  for (const TenantMeter& t : r.monitor.billing) tenant_sum += t.meter;
  EXPECT_EQ(tenant_sum.requests, r.monitor.total.meter.requests);
  EXPECT_EQ(tenant_sum.bytes_sent, r.monitor.total.meter.bytes_sent);
  EXPECT_EQ(tenant_sum.bytes_received, r.monitor.total.meter.bytes_received);
  EXPECT_EQ(tenant_sum.rounds, r.monitor.total.meter.rounds);
  EXPECT_EQ(tenant_sum.clock_us, r.monitor.total.meter.clock_us);

  // Σ windows == billing total (Finish closed the last partial window,
  // so no meter sample is stranded in an open window).
  MeterSample window_sum;
  uint64_t window_offered = 0;
  for (const MonitorWindow& w : r.monitor.windows) {
    window_sum += w.meter;
    window_offered += w.offered;
  }
  ASSERT_EQ(r.monitor.windows_dropped, 0u);
  EXPECT_EQ(window_sum.requests, r.monitor.total.meter.requests);
  EXPECT_EQ(window_sum.bytes_sent, r.monitor.total.meter.bytes_sent);
  EXPECT_EQ(window_offered, r.global.offered);

  // The monitor bills exactly the completed requests (rejections and
  // failures are never charged).
  EXPECT_EQ(r.monitor.total.meter.requests, r.global.completed);

  // Registry: the client-charged `ssdb_meter_*` series agree with the
  // monitor, per stratum — "_all" equals the billed total, per-tenant
  // series sum to it, and the unfiltered CounterTotal is exactly double.
  MetricsRegistry& reg = db->metrics();
  EXPECT_EQ(reg.CounterTotal("ssdb_meter_requests_total", "tenant", "_all"),
            r.monitor.total.meter.requests);
  EXPECT_EQ(reg.CounterTotal("ssdb_meter_bytes_sent_total", "tenant", "_all"),
            r.monitor.total.meter.bytes_sent);
  EXPECT_EQ(
      reg.CounterTotal("ssdb_meter_bytes_received_total", "tenant", "_all"),
      r.monitor.total.meter.bytes_received);
  EXPECT_EQ(reg.CounterTotal("ssdb_meter_clock_us_total", "tenant", "_all"),
            r.monitor.total.meter.clock_us);
  uint64_t per_tenant = 0;
  for (const TenantMeter& t : r.monitor.billing) {
    per_tenant += reg.CounterValue("ssdb_meter_bytes_sent_total",
                                   {{"tenant", t.tenant}});
  }
  EXPECT_EQ(per_tenant, r.monitor.total.meter.bytes_sent);
  EXPECT_EQ(reg.CounterTotal("ssdb_meter_requests_total"),
            2 * r.monitor.total.meter.requests);

  // The wire: a fault-free sequential run's metered bytes are exactly
  // the network's ChannelStats delta — nothing crosses unbilled.
  const ChannelStats after = db->network_stats();
  EXPECT_EQ(r.monitor.total.meter.bytes_sent,
            after.bytes_sent - before.bytes_sent);
  EXPECT_EQ(r.monitor.total.meter.bytes_received,
            after.bytes_received - before.bytes_received);

  // Cost: self-series match the report, and the model is applied to the
  // billed totals exactly.
  const CostModel& cost = MonitoredOptions().monitor_options.cost;
  uint64_t billed_cost = 0;
  for (const TenantMeter& t : r.monitor.billing) {
    billed_cost += t.cost_microcredits;
    EXPECT_EQ(t.cost_microcredits,
              reg.CounterValue("ssdb_meter_cost_microcredits_total",
                               {{"tenant", t.tenant}}));
  }
  EXPECT_EQ(billed_cost, r.monitor.total.cost_microcredits);
  EXPECT_EQ(r.monitor.total.cost_microcredits,
            cost.Cost(r.monitor.total.meter.requests,
                      r.monitor.total.meter.bytes(),
                      r.monitor.total.meter.clock_us));
}

TEST(MonitorAlerts, QuotaOverloadFiresRejectRatioRule) {
  auto db = MakeDb();
  std::vector<TenantSpec> tenants = TwoTenants(/*qps=*/200.0);
  tenants[0].quota_qps = 20.0;  // alpha sheds most of its offered load
  tenants[0].quota_burst = 1.0;
  auto report = RunOnce(db.get(), tenants, MonitoredOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const TrafficReport& r = report.value();
  ASSERT_GT(r.tenants[0].rejected_quota, 0u);
  bool fired = false;
  for (const AlertEvent& e : r.monitor.alerts) {
    if (e.rule == "admission_reject_ratio" && e.firing) fired = true;
  }
  EXPECT_TRUE(fired);
  EXPECT_GE(db->metrics().CounterValue("ssdb_alerts_fired_total",
                                       {{"rule", "admission_reject_ratio"}}),
            1u);
}

}  // namespace
}  // namespace ssdb
