// Concurrent runtime tests: the thread pool, the fan-out network layer
// under per-leg failure injection, and the determinism contract — a
// serial query stream must produce byte-identical results and identical
// virtual-clock totals for any fan-out thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/outsourced_db.h"
#include "net/network.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // More outer iterations than workers, each spawning an inner
  // ParallelFor on the same pool: the caller-participation design must
  // make progress even with every worker busy.
  ThreadPool pool(2);
  std::atomic<size_t> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, SingleThreadPoolStillCompletesNestedWork) {
  ThreadPool pool(1);
  std::atomic<size_t> count{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16u);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks) {
  std::atomic<size_t> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // dtor joins after draining the queue
  EXPECT_EQ(count.load(), 64u);
}

// ------------------------------------------------- Network fan-out failures

/// Endpoint that echoes the request back (response size == request size).
class EchoEndpoint : public ProviderEndpoint {
 public:
  explicit EchoEndpoint(std::string name) : name_(std::move(name)) {}
  Result<Buffer> Handle(Slice request) override {
    Buffer out;
    out.Append(request);
    return out;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
};

Buffer MakePayload(size_t size, uint8_t fill) {
  Buffer b;
  for (size_t i = 0; i < size; ++i) b.PutU8(fill);
  return b;
}

TEST(NetworkFanOut, PerLegFailureModesUnderConcurrentFanOut) {
  Network net(NetworkCostModel(), /*failure_seed=*/7, /*fanout_threads=*/4);
  for (int i = 0; i < 4; ++i) {
    net.AddProvider(std::make_shared<EchoEndpoint>("p" + std::to_string(i)));
  }
  net.SetFailure(1, FailureMode::kDown);
  net.SetFailure(2, FailureMode::kDropSome, /*drop_probability=*/1.0);
  net.SetFailure(3, FailureMode::kCorruptResponse);

  const std::vector<Buffer> requests = {
      MakePayload(100, 0xAA),  // healthy
      MakePayload(400, 0xBB),  // down
      MakePayload(40, 0xCC),   // always dropped
      MakePayload(64, 0xDD),   // corrupted
  };
  const uint64_t before = net.clock().now_us();
  auto out = net.CallManyDistinct({0, 1, 2, 3}, requests);
  ASSERT_EQ(out.responses.size(), 4u);

  // Leg 0: healthy echo.
  ASSERT_TRUE(out.responses[0].ok());
  EXPECT_EQ(Slice(*out.responses[0]), requests[0].AsSlice());

  // Legs 1 and 2: the link reports Unavailable and counts a failure.
  EXPECT_TRUE(out.responses[1].status().IsUnavailable());
  EXPECT_TRUE(out.responses[2].status().IsUnavailable());
  EXPECT_EQ(net.stats(1).failures, 1u);
  EXPECT_EQ(net.stats(2).failures, 1u);
  EXPECT_EQ(net.stats(1).bytes_sent, 0u);  // dropped before the wire

  // Leg 3: delivered, but with exactly one byte XOR-flipped.
  ASSERT_TRUE(out.responses[3].ok());
  const auto& corrupted = *out.responses[3];
  ASSERT_EQ(corrupted.size(), requests[3].size());
  size_t diffs = 0;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i] != requests[3].AsSlice()[i]) {
      ++diffs;
      EXPECT_EQ(corrupted[i], requests[3].AsSlice()[i] ^ 0x5A);
    }
  }
  EXPECT_EQ(diffs, 1u);

  // Virtual clock: advanced once, by the slowest leg only. Echo responses
  // match request sizes, so each live leg costs RoundTripUs(size, size);
  // down/dropped legs cost one latency (a timeout).
  const NetworkCostModel& m = net.model();
  uint64_t slowest = m.latency_us;
  slowest = std::max(slowest, m.RoundTripUs(100, 100));
  slowest = std::max(slowest, m.RoundTripUs(64, 64));
  EXPECT_EQ(net.clock().now_us() - before, slowest);

  // Per-link accounting is exact despite the concurrent legs.
  EXPECT_EQ(net.stats(0).calls, 1u);
  EXPECT_EQ(net.stats(0).bytes_sent, 100u);
  EXPECT_EQ(net.stats(0).bytes_received, 100u);
}

TEST(NetworkFanOut, RepeatedFanOutKeepsClockAndStatsExact) {
  // Stress the per-link mutexes: many concurrent fan-out rounds with a
  // mixed failure population. Leg 0 stays healthy with the largest
  // payload, so every round's slowest leg — and therefore the total
  // virtual time — is exactly predictable.
  Network net(NetworkCostModel(), /*failure_seed=*/99, /*fanout_threads=*/8);
  constexpr size_t kProviders = 8;
  for (size_t i = 0; i < kProviders; ++i) {
    net.AddProvider(std::make_shared<EchoEndpoint>("p" + std::to_string(i)));
  }
  net.SetFailure(3, FailureMode::kDown);
  net.SetFailure(5, FailureMode::kDropSome, 0.5);
  net.SetFailure(6, FailureMode::kCorruptResponse);

  std::vector<size_t> all;
  std::vector<Buffer> requests;
  for (size_t i = 0; i < kProviders; ++i) {
    all.push_back(i);
    // Leg 0 is the largest; every other payload is strictly smaller.
    requests.push_back(MakePayload(512 - 16 * i, static_cast<uint8_t>(i)));
  }

  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    auto out = net.CallManyDistinct(all, requests);
    ASSERT_TRUE(out.responses[0].ok()) << "round " << round;
    EXPECT_TRUE(out.responses[3].status().IsUnavailable());
    // Leg 5 drops ~half its calls; either way it must answer something.
    EXPECT_TRUE(out.responses[5].ok() ||
                out.responses[5].status().IsUnavailable());
    ASSERT_TRUE(out.responses[6].ok());
  }

  const uint64_t per_round = net.model().RoundTripUs(512, 512);
  EXPECT_EQ(net.clock().now_us(), per_round * kRounds);
  EXPECT_EQ(net.stats(0).calls, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(net.stats(3).failures, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(net.TotalStats().calls, kProviders * kRounds);
}

// ----------------------------------------------------------- Determinism

std::string Fingerprint(const Result<QueryResult>& r) {
  if (!r.ok()) return "ERR:" + r.status().ToString();
  std::string out;
  for (const auto& row : r->rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += ',';
    }
    out += ';';
  }
  out += "#" + std::to_string(r->count);
  out += "/" + std::to_string(r->aggregate_int);
  for (const auto& g : r->groups) {
    out += "|" + g.key.ToString() + ":" + std::to_string(g.sum) + "." +
           std::to_string(g.count);
  }
  return out;
}

struct WorkloadTrace {
  std::string fingerprint;
  uint64_t sim_us = 0;
  uint64_t calls = 0;
  uint64_t bytes = 0;
};

/// Runs a fixed serial workload — inserts, then queries under drop and
/// corruption faults — and records everything observable.
WorkloadTrace RunWorkload(size_t fanout_threads) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
  options.fanout_threads = fanout_threads;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();

  EXPECT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(11, Distribution::kUniform);
  EXPECT_TRUE(db->Insert("Employees", gen.Rows(300)).ok());

  // Faults that consume per-link randomness (kDropSome) and trigger the
  // client's corruption-retry path: both must replay identically.
  db->faults().Drop(1, 0.4);
  db->faults().Corrupt(3);

  Rng rng(2024);
  WorkloadTrace trace;
  for (int i = 0; i < 25; ++i) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const int64_t lo = rng.UniformInt(0, 150000);
      trace.fingerprint += Fingerprint(db->Execute(
          Query::Select("Employees")
              .Where(Between("salary", Value::Int(lo), Value::Int(lo + 25000)))));
    } else if (dice < 0.7) {
      trace.fingerprint += Fingerprint(db->Execute(
          Query::Select("Employees")
              .Where(Eq("dept", Value::Int(rng.UniformInt(0, 9))))));
    } else {
      const int64_t lo = rng.UniformInt(0, 100000);
      trace.fingerprint += Fingerprint(db->Execute(
          Query::Select("Employees")
              .Where(Between("salary", Value::Int(lo), Value::Int(lo + 50000)))
              .Aggregate(AggregateOp::kSum, "salary")));
    }
    trace.fingerprint += '\n';
  }

  trace.sim_us = db->simulated_time_us();
  const ChannelStats totals = db->network_stats();
  trace.calls = totals.calls;
  trace.bytes = totals.total_bytes();
  return trace;
}

TEST(Determinism, SerialStreamIdenticalAcrossFanOutThreadCounts) {
  // The contract from the redesign: for a serial query stream, results,
  // virtual-clock total, and byte/call accounting are all independent of
  // how many worker threads execute the fan-out legs.
  const WorkloadTrace base = RunWorkload(1);
  ASSERT_FALSE(base.fingerprint.empty());
  for (size_t threads : {4u, 8u}) {
    const WorkloadTrace t = RunWorkload(threads);
    EXPECT_EQ(t.fingerprint, base.fingerprint) << "threads=" << threads;
    EXPECT_EQ(t.sim_us, base.sim_us) << "threads=" << threads;
    EXPECT_EQ(t.calls, base.calls) << "threads=" << threads;
    EXPECT_EQ(t.bytes, base.bytes) << "threads=" << threads;
  }
}

// ----------------------------------------------------------- ExecuteBatch

TEST(ExecuteBatch, SlotsMatchSerialExecution) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.fanout_threads = 4;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(3, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(250)).ok());

  std::vector<Query> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(Query::Select("Employees")
                          .Where(Between("salary", Value::Int(i * 10000),
                                         Value::Int(i * 10000 + 30000))));
  }
  std::vector<std::string> serial;
  for (const Query& q : queries) serial.push_back(Fingerprint(db->Execute(q)));

  auto batch = db->ExecuteBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(Fingerprint(batch[i]), serial[i]) << "slot " << i;
  }
}

TEST(ExecuteBatch, NestedFanOutCompletesOnSingleWorkerPool) {
  // A batch whose per-query fan-out legs run on the same one-worker pool:
  // only caller participation keeps this from deadlocking.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  options.fanout_threads = 1;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(5, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(100)).ok());

  std::vector<Query> queries(
      8, Query::Select("Employees").Aggregate(AggregateOp::kCount));
  auto batch = db->ExecuteBatch(queries);
  ASSERT_EQ(batch.size(), 8u);
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "slot " << i;
    EXPECT_EQ(batch[i].value().count, 100u) << "slot " << i;
  }
}

TEST(ExecuteBatch, SurvivesFaultsInjectedMidBatch) {
  // Faults can be toggled while a batch is in flight (the controller is
  // thread-safe); every slot must still come back ok or Unavailable —
  // never torn state.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
  options.fanout_threads = 4;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(9, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(200)).ok());

  db->faults().Down(0);
  db->faults().Corrupt(2);
  std::vector<Query> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(Query::Select("Employees")
                          .Where(Eq("dept", Value::Int(i % 10))));
  }
  auto batch = db->ExecuteBatch(queries);
  db->faults().HealAll();
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "slot " << i << ": "
                               << batch[i].status().ToString();
  }
}

}  // namespace
}  // namespace ssdb
