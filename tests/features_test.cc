// Tests for the extension features: projection push-down, GROUP BY
// aggregation, disjunctive predicates, and proactive share refresh.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t n = 4, size_t k = 2) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  auto db = OutsourcedDatabase::Create(options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TableSchema EmployeesSchema() {
  TableSchema schema;
  schema.table_name = "Employees";
  schema.columns = {
      StringColumn("name", 8),
      IntColumn("salary", 0, 1'000'000),
      IntColumn("dept", 0, 100),
  };
  return schema;
}

void LoadEmployees(OutsourcedDatabase* db) {
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {
                             {Value::Str("JOHN"), Value::Int(20000), Value::Int(1)},
                             {Value::Str("ALICE"), Value::Int(35000), Value::Int(1)},
                             {Value::Str("BOB"), Value::Int(50000), Value::Int(2)},
                             {Value::Str("CAROL"), Value::Int(10000), Value::Int(2)},
                             {Value::Str("DAVE"), Value::Int(42000), Value::Int(2)},
                             {Value::Str("ERIN"), Value::Int(78000), Value::Int(3)},
                         })
                  .ok());
}

// --- Projection -----------------------------------------------------------

TEST(Projection, ReturnsOnlyRequestedColumns) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(2)))
                           .Project({"salary"}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  std::multiset<int64_t> salaries;
  for (const auto& row : r->rows) {
    ASSERT_EQ(row.size(), 1u);
    salaries.insert(row[0].AsInt());
  }
  EXPECT_EQ(salaries, (std::multiset<int64_t>{50000, 10000, 42000}));
}

TEST(Projection, ReordersColumns) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("name", Value::Str("ERIN")))
                           .Project({"dept", "name"}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
  EXPECT_EQ(r->rows[0][1].AsString(), "ERIN");
}

TEST(Projection, ReducesBytesOnTheWire) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  db->ResetAllStats();
  ASSERT_TRUE(db->Execute(Query::Select("Employees")).ok());
  const uint64_t full_bytes = db->network_stats().bytes_received;
  db->ResetAllStats();
  ASSERT_TRUE(
      db->Execute(Query::Select("Employees").Project({"dept"})).ok());
  const uint64_t projected_bytes = db->network_stats().bytes_received;
  EXPECT_LT(projected_bytes * 2, full_bytes);
}

TEST(Projection, UnknownColumnRejected) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees").Project({"nope"}));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Projection, WorksWithMinAggregate) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Aggregate(AggregateOp::kMin, "salary")
                           .Project({"name", "salary"}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "CAROL");
  EXPECT_EQ(r->aggregate_int, 10000);
}

// --- GROUP BY ----------------------------------------------------------------

TEST(GroupBy, SumPerDepartment) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Aggregate(AggregateOp::kSum, "salary")
                           .GroupBy("dept"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->groups.size(), 3u);
  std::map<int64_t, int64_t> sums;
  std::map<int64_t, uint64_t> counts;
  for (const auto& g : r->groups) {
    sums[g.key.AsInt()] = g.sum;
    counts[g.key.AsInt()] = g.count;
  }
  EXPECT_EQ(sums[1], 55000);
  EXPECT_EQ(sums[2], 102000);
  EXPECT_EQ(sums[3], 78000);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(r->count, 6u);
}

TEST(GroupBy, AvgAndCountWithPredicate) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto avg = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(0),
                                            Value::Int(50000)))
                             .Aggregate(AggregateOp::kAvg, "salary")
                             .GroupBy("dept"));
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  std::map<int64_t, double> avgs;
  for (const auto& g : avg->groups) avgs[g.key.AsInt()] = g.average;
  EXPECT_DOUBLE_EQ(avgs[1], 27500.0);
  EXPECT_DOUBLE_EQ(avgs[2], 34000.0);
  EXPECT_EQ(avgs.count(3), 0u);  // ERIN filtered out -> no group 3

  auto cnt = db->Execute(Query::Select("Employees")
                             .Aggregate(AggregateOp::kCount)
                             .GroupBy("name"));
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(cnt->groups.size(), 6u);  // all names distinct
  for (const auto& g : cnt->groups) EXPECT_EQ(g.count, 1u);
}

TEST(GroupBy, StringGroupKeyReconstructs) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  ASSERT_TRUE(db->Insert("Employees", {{Value::Str("JOHN"), Value::Int(1000),
                                        Value::Int(9)}})
                  .ok());
  auto r = db->Execute(Query::Select("Employees")
                           .Aggregate(AggregateOp::kSum, "salary")
                           .GroupBy("name"));
  ASSERT_TRUE(r.ok());
  std::map<std::string, int64_t> sums;
  for (const auto& g : r->groups) sums[g.key.AsString()] = g.sum;
  EXPECT_EQ(sums["JOHN"], 21000);
  EXPECT_EQ(sums["BOB"], 50000);
}

TEST(GroupBy, UnsupportedShapesRejected) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  // MIN with GROUP BY is not supported.
  auto r1 = db->Execute(Query::Select("Employees")
                            .Aggregate(AggregateOp::kMin, "salary")
                            .GroupBy("dept"));
  EXPECT_TRUE(r1.status().IsNotSupported());
  // Group column must be exact-match capable.
  TableSchema schema;
  schema.table_name = "NoDet";
  schema.columns = {IntColumn("a", 0, 10, kCapRange),
                    IntColumn("b", 0, 10)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  auto r2 = db->Execute(Query::Select("NoDet")
                            .Aggregate(AggregateOp::kSum, "b")
                            .GroupBy("a"));
  EXPECT_TRUE(r2.status().IsNotSupported());
}

TEST(GroupBy, ManyGroupsMatchReference) {
  auto db = MakeDb(5, 3);
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(31, Distribution::kUniform);
  const auto rows = gen.Rows(500);
  ASSERT_TRUE(db->Insert("Employees", rows).ok());
  std::map<int64_t, std::pair<int64_t, uint64_t>> ref;  // dept -> (sum, n)
  for (const auto& row : rows) {
    auto& [sum, n] = ref[row[2].AsInt()];
    sum += row[1].AsInt();
    ++n;
  }
  auto r = db->Execute(Query::Select("Employees")
                           .Aggregate(AggregateOp::kSum, "salary")
                           .GroupBy("dept"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), ref.size());
  for (const auto& g : r->groups) {
    auto it = ref.find(g.key.AsInt());
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(g.sum, it->second.first);
    EXPECT_EQ(g.count, it->second.second);
  }
}

// --- Disjunctions --------------------------------------------------------------

TEST(Disjunction, UnionOfPredicates) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .WhereAny({Eq("name", Value::Str("JOHN")),
                                      Between("salary", Value::Int(70000),
                                              Value::Int(99999))}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::multiset<std::string> names;
  for (const auto& row : r->rows) names.insert(row[0].AsString());
  EXPECT_EQ(names, (std::multiset<std::string>{"JOHN", "ERIN"}));
}

TEST(Disjunction, OverlappingDisjunctsDeduplicated) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .WhereAny({Between("salary", Value::Int(0),
                                              Value::Int(40000)),
                                      Between("salary", Value::Int(30000),
                                              Value::Int(60000))}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);  // everything but ERIN, no duplicates
}

TEST(Disjunction, CombinesWithConjunctsAndProjection) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(2)))
                           .WhereAny({Eq("name", Value::Str("BOB")),
                                      Eq("name", Value::Str("CAROL")),
                                      Eq("name", Value::Str("ERIN"))})
                           .Project({"name"}));
  ASSERT_TRUE(r.ok());
  std::multiset<std::string> names;
  for (const auto& row : r->rows) names.insert(row[0].AsString());
  // ERIN is dept 3, filtered by the conjunct.
  EXPECT_EQ(names, (std::multiset<std::string>{"BOB", "CAROL"}));
}

TEST(Disjunction, AggregateRejected) {
  auto db = MakeDb();
  LoadEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .WhereAny({Eq("dept", Value::Int(1))})
                           .Aggregate(AggregateOp::kSum, "salary"));
  EXPECT_TRUE(r.status().IsNotSupported());
}

// --- Share refresh ---------------------------------------------------------------

TEST(Refresh, SharesChangeButSecretsDoNot) {
  auto db = MakeDb(3, 2);
  LoadEmployees(db.get());

  // Capture provider 0's stored secret shares before the refresh.
  auto before_table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(before_table.ok());
  std::map<uint64_t, uint64_t> before;
  (*before_table)->ScanAll([&](const StoredRow& row) {
    before[row.row_id] = row.cells[1].secret;
    return true;
  });

  ASSERT_TRUE(db->RefreshTable("Employees").ok());

  auto after_table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(after_table.ok());
  size_t changed = 0;
  (*after_table)->ScanAll([&](const StoredRow& row) {
    if (before[row.row_id] != row.cells[1].secret) ++changed;
    return true;
  });
  EXPECT_EQ(changed, before.size());  // every share re-randomized

  // Data still reads back exactly.
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("name", Value::Str("ALICE"))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 35000);
  auto sum = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kSum, "salary"));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->aggregate_int, 235000);
}

TEST(Refresh, RepeatedRefreshesStayConsistent) {
  auto db = MakeDb(5, 3);
  LoadEmployees(db.get());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db->RefreshTable("Employees").ok());
  }
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Between("salary", Value::Int(10000),
                                          Value::Int(40000))));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST(Refresh, RequiresAllProviders) {
  auto db = MakeDb(4, 2);
  LoadEmployees(db.get());
  db->faults().Down(3);
  EXPECT_TRUE(db->RefreshTable("Employees").IsUnavailable());
  db->faults().HealAll();
  // The failed refresh must not have desynchronized anything the read
  // path notices (deltas were rejected atomically per provider call).
  auto r = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 6u);
}

TEST(Refresh, UnknownTableRejected) {
  auto db = MakeDb();
  EXPECT_TRUE(db->RefreshTable("nope").IsNotFound());
}

}  // namespace
}  // namespace ssdb
