// Tests for the value codec, base-27 strings (§V.B), and schemas.

#include <gtest/gtest.h>

#include "codec/schema.h"
#include "codec/string27.h"
#include "codec/value.h"

namespace ssdb {
namespace {

TEST(Value, RoundTripSerde) {
  Buffer buf;
  Value::Int(-123456).EncodeTo(&buf);
  Value::Str("HELLO").EncodeTo(&buf);
  Decoder dec(buf.AsSlice());
  Value a, b;
  ASSERT_TRUE(Value::DecodeFrom(&dec, &a).ok());
  ASSERT_TRUE(Value::DecodeFrom(&dec, &b).ok());
  EXPECT_EQ(a, Value::Int(-123456));
  EXPECT_EQ(b, Value::Str("HELLO"));
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToString(), "-123456");
  EXPECT_EQ(b.ToString(), "'HELLO'");
}

TEST(Value, BadTagRejected) {
  Buffer buf;
  buf.PutU8(99);
  Decoder dec(buf.AsSlice());
  Value v;
  EXPECT_TRUE(Value::DecodeFrom(&dec, &v).IsCorruption());
}

TEST(String27, PaperSchemeExample) {
  // §V.B: "ABC" at width 5 -> (1 2 3 0 0) base 27.
  auto codec = String27::Create(5);
  ASSERT_TRUE(codec.ok());
  auto code = codec->Encode("ABC");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 1 * 27LL * 27 * 27 * 27 + 2 * 27LL * 27 * 27 +
                              3 * 27LL * 27);
  EXPECT_EQ(code.value(), 572994);
  // "FATIH" keeps all 5 characters (the paper's example name).
  auto fatih = codec->Encode("FATIH");
  ASSERT_TRUE(fatih.ok());
  EXPECT_EQ(codec->Decode(fatih.value()).value(), "FATIH");
}

TEST(String27, RoundTripAndCaseFolding) {
  auto codec = String27::Create(8);
  ASSERT_TRUE(codec.ok());
  for (const std::string& s : {"A", "Z", "JOHN", "ALBERT", "ZZZZZZZZ", ""}) {
    auto code = codec->Encode(s);
    ASSERT_TRUE(code.ok()) << s;
    EXPECT_EQ(codec->Decode(code.value()).value(), s);
  }
  EXPECT_EQ(codec->Encode("john").value(), codec->Encode("JOHN").value());
}

TEST(String27, OrderIsLexicographic) {
  auto codec = String27::Create(6);
  ASSERT_TRUE(codec.ok());
  const std::vector<std::string> sorted = {"",       "A",     "AA",
                                           "AB",     "ABC",   "B",
                                           "JACK",   "JACKS", "ZZZZZZ"};
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    EXPECT_LT(codec->Encode(sorted[i]).value(),
              codec->Encode(sorted[i + 1]).value())
        << sorted[i] << " vs " << sorted[i + 1];
  }
}

TEST(String27, Validation) {
  EXPECT_FALSE(String27::Create(0).ok());
  EXPECT_FALSE(String27::Create(13).ok());
  auto codec = String27::Create(3);
  ASSERT_TRUE(codec.ok());
  EXPECT_TRUE(codec->Encode("TOOLONG").status().IsOutOfRange());
  EXPECT_TRUE(codec->Encode("A1").status().IsInvalidArgument());
  EXPECT_TRUE(codec->Decode(-1).status().IsOutOfRange());
  EXPECT_TRUE(codec->Decode(27 * 27 * 27).status().IsOutOfRange());
}

TEST(String27, PrefixRangeCoversExactlyPrefixedStrings) {
  auto codec = String27::Create(5);
  ASSERT_TRUE(codec.ok());
  auto range = codec->PrefixRange("AB");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(codec->Encode("AB").value(), range->lo);
  for (const std::string& in : {"AB", "ABA", "ABZZZ", "ABC"}) {
    const int64_t c = codec->Encode(in).value();
    EXPECT_GE(c, range->lo) << in;
    EXPECT_LE(c, range->hi) << in;
  }
  for (const std::string& out : {"AA", "AC", "B", "A"}) {
    const int64_t c = codec->Encode(out).value();
    EXPECT_TRUE(c < range->lo || c > range->hi) << out;
  }
}

TEST(String27, LexRange) {
  auto codec = String27::Create(8);
  ASSERT_TRUE(codec.ok());
  auto range = codec->LexRange("ALBERT", "JACK");
  ASSERT_TRUE(range.ok());
  EXPECT_GE(codec->Encode("BOB").value(), range->lo);
  EXPECT_LE(codec->Encode("BOB").value(), range->hi);
  EXPECT_LE(codec->Encode("JACKSON").value(), range->hi);
  EXPECT_GT(codec->Encode("JAD").value(), range->hi);
  EXPECT_LT(codec->Encode("ALBERS").value(), range->lo);
  EXPECT_TRUE(codec->LexRange("Z", "A").status().IsInvalidArgument());
}

TEST(Schema, ValidationRules) {
  TableSchema schema;
  EXPECT_FALSE(schema.Validate().ok());  // no name, no columns
  schema.table_name = "T";
  EXPECT_FALSE(schema.Validate().ok());  // no columns
  schema.columns = {IntColumn("a", 0, 10), IntColumn("a", 0, 10)};
  EXPECT_TRUE(schema.Validate().IsAlreadyExists());  // duplicate name
  schema.columns = {IntColumn("a", 10, 0)};
  EXPECT_FALSE(schema.Validate().ok());  // hi < lo
  schema.columns = {IntColumn("a", 0, 10), StringColumn("b", 6)};
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(Schema, SharedDomainMustMatch) {
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("a", 0, 10, kCapExactMatch, "dom"),
                    IntColumn("b", 0, 99, kCapExactMatch, "dom")};
  EXPECT_FALSE(schema.Validate().ok());
  schema.columns[1].int_domain = OpDomain{0, 10};
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.columns[0].DomainTag(), schema.columns[1].DomainTag());
}

TEST(Schema, DomainWiderThan60BitsRejected) {
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("a", INT64_MIN, INT64_MAX)};
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(Schema, EncodeDecodeCodes) {
  const ColumnSpec salary = IntColumn("salary", 1000, 9000);
  EXPECT_EQ(salary.EncodeToCode(Value::Int(5000)).value(), 5000);
  EXPECT_TRUE(salary.EncodeToCode(Value::Int(999)).status().IsOutOfRange());
  EXPECT_TRUE(
      salary.EncodeToCode(Value::Str("X")).status().IsInvalidArgument());
  EXPECT_EQ(salary.DecodeFromCode(5000).value(), Value::Int(5000));
  EXPECT_TRUE(salary.DecodeFromCode(99999).status().IsCorruption());

  const ColumnSpec name = StringColumn("name", 4);
  const int64_t code = name.EncodeToCode(Value::Str("ANNA")).value();
  EXPECT_EQ(name.DecodeFromCode(code).value(), Value::Str("ANNA"));
}

TEST(Schema, ProviderLayoutHidesDomains) {
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("a", 0, 10, kCapExactMatch),
                    IntColumn("b", 0, 10, kCapRange),
                    IntColumn("c", 0, 10, kCapNone)};
  const auto layout = ProviderLayout(schema);
  ASSERT_EQ(layout.size(), 3u);
  EXPECT_TRUE(layout[0].has_det);
  EXPECT_FALSE(layout[0].has_op);
  EXPECT_FALSE(layout[1].has_det);
  EXPECT_TRUE(layout[1].has_op);
  EXPECT_FALSE(layout[2].has_det);
  EXPECT_FALSE(layout[2].has_op);
}

TEST(Schema, ColumnIndexLookup) {
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("x", 0, 1), IntColumn("y", 0, 1)};
  EXPECT_EQ(schema.ColumnIndex("y").value(), 1u);
  EXPECT_TRUE(schema.ColumnIndex("z").status().IsNotFound());
}

}  // namespace
}  // namespace ssdb
