// Tests for workload generators and the intersection protocols (E7).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "workload/generators.h"
#include "workload/intersection.h"
#include "workload/query_mix.h"

namespace ssdb {
namespace {

TEST(NameGenerator, RespectsWidthAndAlphabet) {
  NameGenerator gen(1);
  for (int i = 0; i < 500; ++i) {
    const std::string name = gen.Next(8);
    EXPECT_GE(name.size(), 3u);
    EXPECT_LE(name.size(), 8u);
    for (char c : name) {
      EXPECT_GE(c, 'A');
      EXPECT_LE(c, 'Z');
    }
  }
}

TEST(EmployeeGenerator, RowsMatchSchema) {
  EmployeeGenerator gen(2, Distribution::kUniform);
  const TableSchema schema = EmployeeGenerator::EmployeesSchema();
  ASSERT_TRUE(schema.Validate().ok());
  for (const auto& row : gen.Rows(200)) {
    EXPECT_TRUE(schema.ValidateRow(row).ok());
  }
}

TEST(EmployeeGenerator, DistributionsDiffer) {
  EmployeeGenerator uniform(3, Distribution::kUniform);
  EmployeeGenerator zipf(3, Distribution::kZipf);
  EmployeeGenerator seq(3, Distribution::kSequential);
  int64_t zipf_small = 0, uniform_small = 0;
  for (int i = 0; i < 2000; ++i) {
    if (uniform.Next().salary < 20000) ++uniform_small;
    if (zipf.Next().salary < 20000) ++zipf_small;
  }
  // Zipf concentrates near 0.
  EXPECT_GT(zipf_small, uniform_small * 2);
  EXPECT_EQ(seq.Next().salary, 0);
  EXPECT_EQ(seq.Next().salary, 1);
}

TEST(MedicalGenerator, RowsMatchSchemaAndIdsIncrease) {
  MedicalGenerator gen(4);
  const TableSchema schema = MedicalGenerator::MedicalSchema();
  ASSERT_TRUE(schema.Validate().ok());
  const auto rows = gen.Rows(100);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(schema.ValidateRow(rows[i]).ok());
    EXPECT_EQ(rows[i][0].AsInt(), static_cast<int64_t>(i + 1));
  }
}

TEST(DocumentGenerator, DocumentsHaveDistinctWords) {
  DocumentGenerator gen(5, 10000);
  const auto doc = gen.Document(1000);
  EXPECT_EQ(doc.size(), 1000u);
  std::set<uint64_t> unique(doc.begin(), doc.end());
  EXPECT_EQ(unique.size(), doc.size());
  const auto corpus = gen.Corpus(10, 100);
  EXPECT_EQ(corpus.size(), 1000u);
}

size_t ReferenceIntersection(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  std::unordered_set<uint64_t> sa(a.begin(), a.end());
  std::unordered_set<uint64_t> sb(b.begin(), b.end());
  size_t hits = 0;
  for (uint64_t x : sa) {
    if (sb.count(x) != 0) ++hits;
  }
  return hits;
}

TEST(Intersection, BothProtocolsAgreeWithReference) {
  DocumentGenerator gen(6, 5000);
  std::vector<uint64_t> a = gen.Document(800);
  std::vector<uint64_t> b = gen.Document(800);
  // Deduplicate (the protocols operate on sets).
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  const size_t expect = ReferenceIntersection(a, b);
  ASSERT_GT(expect, 0u);

  Rng rng(7);
  auto enc = EncryptedIntersection(a, b, &rng);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->matches, expect);

  auto shared = SharedIntersection(a, b, 4, 2, 123);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->matches, expect);
}

TEST(Intersection, CostShapesMatchThePaperArgument) {
  DocumentGenerator gen(8, 20000);
  const auto a = gen.Corpus(5, 200);
  const auto b = gen.Corpus(5, 200);
  Rng rng(9);
  auto enc = EncryptedIntersection(a, b, &rng);
  auto shared = SharedIntersection(a, b, 4, 2, 10);
  ASSERT_TRUE(enc.ok() && shared.ok());
  // Encryption pays ~3 modexps (60+ multiplies each) per element; the
  // sharing protocol pays n PRF calls per element — hundreds of times
  // cheaper per op. The op counters capture that asymmetry.
  EXPECT_GT(enc->modexp_ops, (a.size() + b.size()));
  EXPECT_EQ(enc->prf_ops, 0u);
  EXPECT_EQ(shared->modexp_ops, 0u);
  EXPECT_GT(shared->prf_ops, 0u);
}

TEST(Intersection, SharedValidation) {
  EXPECT_FALSE(SharedIntersection({1}, {1}, 0, 0, 1).ok());
  EXPECT_FALSE(SharedIntersection({1}, {1}, 2, 3, 1).ok());
  auto ok = SharedIntersection({1, 2, 3}, {3, 4}, 3, 3, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->matches, 1u);
}

TEST(QueryMix, RunsAllOperationClassesAndStaysConsistent) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(11, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(300)).ok());

  QueryMixDriver driver(db.get(), "Employees", /*seed=*/5);
  ASSERT_TRUE(driver.RunOps(200).ok());
  const MixStats& stats = driver.stats();
  EXPECT_EQ(stats.total_ops(), 200u);
  // With the default ratios every class should have fired at least once
  // in 200 ops (probability of a miss is negligible).
  EXPECT_GT(stats.point_lookups, 0u);
  EXPECT_GT(stats.range_scans, 0u);
  EXPECT_GT(stats.aggregates, 0u);
  EXPECT_GT(stats.updates, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.erases, 0u);

  // The table still answers consistently afterwards: COUNT(*) equals the
  // number of rows a full scan returns.
  auto count = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kCount));
  auto all = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(count.ok() && all.ok());
  EXPECT_EQ(count->count, all->rows.size());
}

TEST(QueryMix, ZeroRatiosSkipClasses) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/2, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(12, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(50)).ok());
  MixRatios reads_only;
  reads_only.point_lookup = 1.0;
  reads_only.range_scan = 0;
  reads_only.aggregate = 0;
  reads_only.update = 0;
  reads_only.insert = 0;
  reads_only.erase = 0;
  QueryMixDriver driver(db.get(), "Employees", 6, reads_only);
  ASSERT_TRUE(driver.RunOps(50).ok());
  EXPECT_EQ(driver.stats().point_lookups, 50u);
  EXPECT_EQ(driver.stats().updates, 0u);
  EXPECT_EQ(driver.stats().inserts, 0u);
}

TEST(QueryMix, SeedDerivationIsCentralizedAndStable) {
  // The driver derives its op dice and row generator through
  // Rng::ForkSeed (streams 1 and 2 of the driver seed) instead of ad-hoc
  // xor constants. Two same-seed drivers over identical deployments must
  // replay the same op sequence — exact per-class counts, not just
  // ratios — so seed-derivation refactors cannot silently shift streams.
  MixStats first;
  for (int run = 0; run < 2; ++run) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
    auto db = std::move(OutsourcedDatabase::Create(options)).value();
    ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
    EmployeeGenerator gen(11, Distribution::kUniform);
    ASSERT_TRUE(db->Insert("Employees", gen.Rows(100)).ok());
    QueryMixDriver driver(db.get(), "Employees", /*seed=*/77);
    ASSERT_TRUE(driver.RunOps(120).ok());
    if (run == 0) {
      first = driver.stats();
    } else {
      EXPECT_EQ(driver.stats().point_lookups, first.point_lookups);
      EXPECT_EQ(driver.stats().range_scans, first.range_scans);
      EXPECT_EQ(driver.stats().aggregates, first.aggregates);
      EXPECT_EQ(driver.stats().updates, first.updates);
      EXPECT_EQ(driver.stats().inserts, first.inserts);
      EXPECT_EQ(driver.stats().erases, first.erases);
      EXPECT_EQ(driver.stats().rows_touched, first.rows_touched);
    }
  }
}

TEST(Intersection, EmptySets) {
  Rng rng(10);
  auto enc = EncryptedIntersection({}, {}, &rng);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->matches, 0u);
  auto shared = SharedIntersection({}, {1, 2}, 2, 2, 3);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->matches, 0u);
}

}  // namespace
}  // namespace ssdb
