// Tests for the simulated network: cost model, accounting, fan-out
// parallelism, failure injection.

#include <gtest/gtest.h>

#include "net/network.h"

namespace ssdb {
namespace {

/// Endpoint that echoes the request with a fixed-size padding.
class EchoEndpoint : public ProviderEndpoint {
 public:
  explicit EchoEndpoint(size_t pad, std::string name = "echo")
      : pad_(pad), name_(std::move(name)) {}
  Result<Buffer> Handle(Slice request) override {
    Buffer out;
    out.Append(request);
    for (size_t i = 0; i < pad_; ++i) out.PutU8(0);
    return out;
  }
  std::string name() const override { return name_; }

 private:
  size_t pad_;
  std::string name_;
};

/// Endpoint that always fails internally.
class FailingEndpoint : public ProviderEndpoint {
 public:
  Result<Buffer> Handle(Slice) override {
    return Status::Internal("endpoint exploded");
  }
  std::string name() const override { return "boom"; }
};

TEST(Network, CallRoundTripAndAccounting) {
  NetworkCostModel model;
  model.latency_us = 1000;
  model.bandwidth_bytes_per_us = 10.0;
  Network net(model);
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(90));

  Buffer req;
  for (int i = 0; i < 10; ++i) req.PutU8(1);
  auto resp = net.Call(p, req.AsSlice());
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->size(), 100u);

  const ChannelStats& stats = net.stats(p);
  EXPECT_EQ(stats.calls, 1u);
  EXPECT_EQ(stats.bytes_sent, 10u);
  EXPECT_EQ(stats.bytes_received, 100u);
  // 2 * 1000us latency + 110 bytes / 10 B/us = 2011 us.
  EXPECT_EQ(net.clock().now_us(), 2011u);
}

TEST(Network, FanOutChargesSlowestLegOnly) {
  NetworkCostModel model;
  model.latency_us = 500;
  model.bandwidth_bytes_per_us = 1.0;
  Network net(model);
  const size_t small = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  const size_t big = net.AddProvider(std::make_shared<EchoEndpoint>(5000));

  Buffer req;
  req.PutU8(7);
  auto fan = net.CallMany({small, big}, req.AsSlice());
  ASSERT_EQ(fan.responses.size(), 2u);
  EXPECT_TRUE(fan.responses[0].ok());
  EXPECT_TRUE(fan.responses[1].ok());
  // Slowest leg: 2*500 + (1 + 5001)/1.0 = 6002 us; the fast leg (1002us)
  // is absorbed.
  EXPECT_EQ(net.clock().now_us(), 6002u);
}

TEST(Network, DownProviderUnavailable) {
  Network net;
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  net.SetFailure(p, FailureMode::kDown);
  auto resp = net.Call(p, Slice("x"));
  EXPECT_TRUE(resp.status().IsUnavailable());
  EXPECT_EQ(net.stats(p).failures, 1u);
  net.SetFailure(p, FailureMode::kHealthy);
  EXPECT_TRUE(net.Call(p, Slice("x")).ok());
}

TEST(Network, CorruptResponseFlipsOneByte) {
  Network net;
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  net.SetFailure(p, FailureMode::kCorruptResponse);
  Buffer req;
  for (int i = 0; i < 32; ++i) req.PutU8(0xAA);
  auto resp = net.Call(p, req.AsSlice());
  ASSERT_TRUE(resp.ok());
  size_t diffs = 0;
  for (uint8_t b : *resp) {
    if (b != 0xAA) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(Network, DropSomeIsProbabilistic) {
  Network net;
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  net.SetFailure(p, FailureMode::kDropSome, 0.5);
  size_t ok = 0;
  for (int i = 0; i < 400; ++i) {
    if (net.Call(p, Slice("y")).ok()) ++ok;
  }
  EXPECT_GT(ok, 100u);
  EXPECT_LT(ok, 300u);
}

TEST(Network, EndpointErrorCountsAsFailure) {
  Network net;
  const size_t p = net.AddProvider(std::make_shared<FailingEndpoint>());
  auto resp = net.Call(p, Slice("z"));
  EXPECT_TRUE(resp.status().IsInternal());
  EXPECT_EQ(net.stats(p).failures, 1u);
}

TEST(Network, TotalStatsAggregate) {
  Network net;
  const size_t a = net.AddProvider(std::make_shared<EchoEndpoint>(10));
  const size_t b = net.AddProvider(std::make_shared<EchoEndpoint>(20));
  (void)net.Call(a, Slice("aa"));
  (void)net.Call(b, Slice("bb"));
  const ChannelStats total = net.TotalStats();
  EXPECT_EQ(total.calls, 2u);
  EXPECT_EQ(total.bytes_sent, 4u);
  EXPECT_EQ(total.bytes_received, 2u + 10u + 2u + 20u);
  net.ResetStats();
  EXPECT_EQ(net.TotalStats().calls, 0u);
}

TEST(Network, UnknownProviderRejected) {
  Network net;
  EXPECT_TRUE(net.Call(3, Slice("x")).status().IsInvalidArgument());
}

TEST(NetworkCostModel, TransferMath) {
  NetworkCostModel model;
  model.latency_us = 100;
  model.bandwidth_bytes_per_us = 2.0;
  EXPECT_EQ(model.TransferTimeUs(1000), 500u);
  EXPECT_EQ(model.RoundTripUs(100, 300), 2 * 100 + 200u);
}

}  // namespace
}  // namespace ssdb
