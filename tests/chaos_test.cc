// Deterministic chaos suite (separate executable, CTest label "chaos").
//
// A seeded fault scheduler churns Down / Drop / Slow / Flaky (and, in the
// corruption scenario, CorruptResponse) faults across a 6-provider
// deployment while a mixed exact / range / aggregate / join workload
// runs with the full resilience stack enabled (retries with jittered
// backoff, per-call deadlines, hedged reads, circuit breaker, health-
// ranked quorums). The suite proves three things:
//   1. every query answers exactly as a fault-free run does,
//   2. the per-query traces reconcile byte-for-byte (and call-for-call)
//      with the network's ChannelStats,
//   3. the entire run — results, byte streams, virtual-clock totals,
//      retry/hedge/breaker counters — is bit-identical across
//      fanout_threads {1, 4, 8} and across two same-seed runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

constexpr size_t kProviders = 6;
constexpr size_t kThreshold = 2;
constexpr size_t kEmployees = 300;
constexpr size_t kManagers = 30;
constexpr int kRounds = 12;
constexpr int kQueriesPerRound = 3;

enum class Scenario {
  kMixedFaults,  ///< Down/Drop/Slow/Flaky churn, full query mix.
  kCorruption,   ///< One corrupting provider, fetch/range/count mix.
};

/// One pre-generated workload query (generated from the seed alone, so
/// the baseline and every chaos run execute the identical sequence).
struct WorkloadQuery {
  int kind = 0;
  int64_t a = 0;
  int64_t b = 0;
};

std::vector<WorkloadQuery> MakeWorkload(uint64_t seed, Scenario scenario) {
  Rng rng(seed);
  std::vector<WorkloadQuery> out;
  const int kinds = scenario == Scenario::kMixedFaults ? 6 : 3;
  for (int i = 0; i < kRounds * kQueriesPerRound; ++i) {
    WorkloadQuery q;
    q.kind = static_cast<int>(rng.Uniform(static_cast<uint64_t>(kinds)));
    q.a = rng.UniformInt(0, 200000);
    q.b = q.a + rng.UniformInt(1000, 40000);
    out.push_back(q);
  }
  return out;
}

std::string Describe(const QueryResult& r) {
  std::string out;
  char buf[64];
  for (const auto& row : r.rows) {
    for (const Value& v : row) {
      out += v.ToString();
      out += ',';
    }
    out += ';';
  }
  std::snprintf(buf, sizeof(buf), "|agg=%lld,count=%llu,avg=%.3f",
                static_cast<long long>(r.aggregate_int),
                static_cast<unsigned long long>(r.count), r.aggregate_double);
  out += buf;
  for (const auto& g : r.groups) {
    std::snprintf(buf, sizeof(buf), "|%s:%lld:%llu", g.key.ToString().c_str(),
                  static_cast<long long>(g.sum),
                  static_cast<unsigned long long>(g.count));
    out += buf;
  }
  return out;
}

Result<QueryResult> RunOne(OutsourcedDatabase& db, const WorkloadQuery& q) {
  switch (q.kind) {
    case 0:  // exact match on the shared eid domain
      return db.Execute(Query::Select("Employees").Where(
          Eq("eid", Value::Int(q.a % static_cast<int64_t>(kEmployees)))));
    case 1:  // salary range scan
      return db.Execute(Query::Select("Employees").Where(
          Between("salary", Value::Int(q.a), Value::Int(q.b))));
    case 2:  // count over a range
      return db.Execute(Query::Select("Employees")
                            .Where(Between("salary", Value::Int(q.a),
                                           Value::Int(q.b)))
                            .Aggregate(AggregateOp::kCount));
    case 3:  // sum over a range
      return db.Execute(Query::Select("Employees")
                            .Where(Between("salary", Value::Int(q.a),
                                           Value::Int(q.b)))
                            .Aggregate(AggregateOp::kSum, "salary"));
    case 4:  // whole-table median
      return db.Execute(
          Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"));
    default: {  // equi-join on the shared eid domain
      JoinQuery jq;
      jq.left_table = "Employees";
      jq.left_column = "eid";
      jq.right_table = "Managers";
      jq.right_column = "eid";
      return db.Execute(jq);
    }
  }
}

/// Applies the round's fault set: heal everything, then inject a seeded
/// selection. The scheduler RNG is separate from the workload RNG, so
/// both runs see the same queries regardless of the fault schedule.
void ApplyRoundFaults(OutsourcedDatabase& db, Rng& rng, Scenario scenario) {
  db.faults().HealAll();
  if (scenario == Scenario::kCorruption) {
    db.faults().Corrupt(rng.Uniform(kProviders));
    return;
  }
  std::vector<size_t> order(kProviders);
  for (size_t i = 0; i < kProviders; ++i) order[i] = i;
  rng.Shuffle(&order);
  const size_t faulty = rng.Uniform(4);  // 0..3 < n - k + 1 survivable
  for (size_t i = 0; i < faulty; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        db.faults().Down(order[i]);
        break;
      case 1:
        db.faults().Drop(order[i], 0.3);
        break;
      case 2:
        // 100x round trips: far past the 2s deadline, so slow legs become
        // deterministic deadline timeouts.
        db.faults().Slow(order[i], 100.0);
        break;
      default:
        db.faults().Flaky(order[i], 0.5);
        break;
    }
  }
}

struct ScenarioRun {
  std::vector<std::string> results;  ///< Per-query result serialization.
  std::string fingerprint;  ///< Results + clock/byte/counter totals.
  uint64_t failures = 0;    ///< Failed legs seen on the wire.
  uint64_t resilience_events = 0;  ///< Retries + hedges + deadlines + skips.
  std::string metrics_json;  ///< Full registry export after the run.
  std::string trace_json;    ///< Full span export after the run.
};

ScenarioRun RunScenario(uint64_t seed, Scenario scenario, bool chaos,
                        size_t fanout_threads) {
  ScenarioRun run;
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/kProviders, /*k=*/kThreshold);
  options.fanout_threads = fanout_threads;
  if (chaos) {
    ResiliencePolicy& rp = options.client.resilience;
    rp.retry.max_attempts = 3;
    rp.retry.initial_backoff_us = 10000;
    rp.retry.jitter = 0.25;
    rp.deadline_us = 2000000;
    rp.hedge.enabled = true;  // threshold from the scoreboard quantile
    rp.breaker.enabled = true;
    rp.breaker.failures_to_open = 3;
    rp.breaker.open_cooldown_us = 500000;
    rp.prefer_healthy = true;
  }
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) {
    run.fingerprint = "CREATE FAILED";
    return run;
  }
  auto& db = *db_r.value();
  // Record spans for the whole run: the telemetry reconciliation below
  // counts retry/hedge legs and breaker flips out of the span stream.
  db.tracer().Enable(true);

  // Load fault-free: writes are n-of-n and out of scope for the chaos
  // schedule; the workload below is query-only.
  TableSchema employees;
  employees.table_name = "Employees";
  employees.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      StringColumn("name", 8),
      IntColumn("salary", 0, 200000),
      IntColumn("dept", 0, 50),
  };
  TableSchema managers;
  managers.table_name = "Managers";
  managers.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("level", 0, 5),
  };
  EXPECT_TRUE(db.CreateTable(employees).ok());
  EXPECT_TRUE(db.CreateTable(managers).ok());
  NameGenerator names(7);
  Rng data_rng(11);
  std::vector<std::vector<Value>> emp_rows;
  for (size_t i = 0; i < kEmployees; ++i) {
    emp_rows.push_back({Value::Int(static_cast<int64_t>(i)),
                        Value::Str(names.Next(8)),
                        Value::Int(data_rng.UniformInt(0, 200000)),
                        Value::Int(data_rng.UniformInt(0, 50))});
  }
  EXPECT_TRUE(db.Insert("Employees", emp_rows).ok());
  std::vector<std::vector<Value>> mgr_rows;
  for (size_t i = 0; i < kManagers; ++i) {
    mgr_rows.push_back({Value::Int(static_cast<int64_t>(i) * 10),
                        Value::Int(data_rng.UniformInt(0, 5))});
  }
  EXPECT_TRUE(db.Insert("Managers", mgr_rows).ok());

  const std::vector<WorkloadQuery> workload = MakeWorkload(seed, scenario);
  Rng fault_rng(seed ^ 0xFA017E57ULL);
  db.ResetAllStats();
  const uint64_t clock_start = db.simulated_time_us();

  // Trace accumulators for the stats reconciliation.
  uint64_t trace_up = 0, trace_down = 0, trace_legs = 0, trace_failed = 0;
  uint64_t trace_clock = 0, retries = 0, hedges = 0, deadlines = 0, skips = 0;
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> per_provider;

  char buf[160];
  for (int i = 0; i < kRounds * kQueriesPerRound; ++i) {
    if (chaos && i % kQueriesPerRound == 0) {
      ApplyRoundFaults(db, fault_rng, scenario);
    }
    auto r = RunOne(db, workload[i]);
    EXPECT_TRUE(r.ok()) << "query " << i << ": " << r.status().ToString();
    std::string desc =
        r.ok() ? Describe(*r) : "ERROR: " + r.status().ToString();
    if (r.ok()) {
      const QueryTrace& t = r->trace;
      trace_up += t.total_bytes_sent();
      trace_down += t.total_bytes_received();
      trace_legs += t.total_provider_legs();
      trace_clock += t.total_clock_us();
      retries += t.total_attempts();
      hedges += t.total_hedged();
      deadlines += t.total_deadline_exceeded();
      skips += t.total_breaker_skips();
      for (const PlanNodeTrace& node : t.nodes) {
        for (const PlanLegTrace& leg : node.legs) {
          if (!leg.ok) ++trace_failed;
          per_provider[leg.provider].first += leg.bytes_sent;
          per_provider[leg.provider].second += leg.bytes_received;
        }
      }
      std::snprintf(buf, sizeof(buf), "|clock=%llu,up=%llu,down=%llu,legs=%llu",
                    static_cast<unsigned long long>(t.total_clock_us()),
                    static_cast<unsigned long long>(t.total_bytes_sent()),
                    static_cast<unsigned long long>(t.total_bytes_received()),
                    static_cast<unsigned long long>(t.total_provider_legs()));
      desc += buf;
    }
    run.results.push_back(desc);
    run.fingerprint += desc;
    run.fingerprint += '\n';
  }
  db.faults().HealAll();

  // The traces must reconcile exactly with the channel statistics — in
  // aggregate and per provider — and with the virtual clock.
  const ChannelStats total = db.network_stats();
  EXPECT_EQ(trace_up, total.bytes_sent);
  EXPECT_EQ(trace_down, total.bytes_received);
  EXPECT_EQ(trace_legs, total.calls);
  EXPECT_EQ(trace_failed, total.failures);
  EXPECT_EQ(trace_clock, db.simulated_time_us() - clock_start);
  for (size_t p = 0; p < kProviders; ++p) {
    const auto it = per_provider.find(static_cast<uint32_t>(p));
    const uint64_t up = it == per_provider.end() ? 0 : it->second.first;
    const uint64_t down = it == per_provider.end() ? 0 : it->second.second;
    EXPECT_EQ(up, db.network().stats(p).bytes_sent) << "provider " << p;
    EXPECT_EQ(down, db.network().stats(p).bytes_received) << "provider " << p;
  }

  // Registry totals must agree with the same accumulators: the metrics
  // subsystem is charged at the same sites as ChannelStats/QueryTrace,
  // so any drift here is an instrumentation bug.
  const MetricsRegistry& metrics = db.metrics();
  EXPECT_EQ(metrics.CounterTotal("ssdb_net_bytes_sent_total"), trace_up);
  EXPECT_EQ(metrics.CounterTotal("ssdb_net_bytes_received_total"), trace_down);
  EXPECT_EQ(metrics.CounterTotal("ssdb_net_calls_total"), trace_legs);
  EXPECT_EQ(metrics.CounterTotal("ssdb_net_failures_total"), trace_failed);
  EXPECT_EQ(metrics.CounterTotal("ssdb_resilience_retry_legs_total"), retries);
  EXPECT_EQ(metrics.CounterTotal("ssdb_resilience_hedge_legs_total"), hedges);
  EXPECT_EQ(metrics.CounterTotal("ssdb_resilience_breaker_skips_total"),
            skips);
  EXPECT_EQ(metrics.CounterValue("ssdb_client_deadline_exceeded_total"),
            deadlines);
  EXPECT_EQ(metrics.CounterValue("ssdb_client_queries_total"),
            static_cast<uint64_t>(kRounds * kQueriesPerRound));

  // And the span stream tells the same story: every retry leg, hedge leg
  // and breaker flip shows up as exactly one span / instant event.
  uint64_t span_retry_legs = 0, span_hedge_legs = 0, span_breaker_flips = 0;
  for (const SpanRecord& s : db.tracer().Snapshot()) {
    if (s.category == "leg") {
      for (const auto& kv : s.args) {
        if (kv.first == "attempt" && kv.second != "1") ++span_retry_legs;
        if (kv.first == "hedge" && kv.second == "1") ++span_hedge_legs;
      }
    } else if (s.instant && s.name == "breaker") {
      ++span_breaker_flips;
    }
  }
  EXPECT_EQ(span_retry_legs, retries);
  EXPECT_EQ(span_hedge_legs, hedges);
  EXPECT_EQ(span_breaker_flips,
            metrics.CounterTotal("ssdb_resilience_breaker_transitions_total"));
  EXPECT_EQ(db.tracer().dropped(), 0u);

  run.metrics_json = metrics.ExportJson();
  run.trace_json = db.tracer().ExportChromeTrace();

  std::snprintf(
      buf, sizeof(buf),
      "totals|clock=%llu,calls=%llu,failures=%llu,up=%llu,down=%llu,"
      "retries=%llu,hedges=%llu,deadlines=%llu,breaker_skips=%llu",
      static_cast<unsigned long long>(trace_clock),
      static_cast<unsigned long long>(total.calls),
      static_cast<unsigned long long>(total.failures),
      static_cast<unsigned long long>(total.bytes_sent),
      static_cast<unsigned long long>(total.bytes_received),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(deadlines),
      static_cast<unsigned long long>(skips));
  run.fingerprint += buf;
  run.failures = total.failures;
  run.resilience_events = retries + hedges + deadlines + skips;
  return run;
}

TEST(Chaos, MixedFaultChurnMatchesTheFaultFreeRun) {
  const ScenarioRun baseline =
      RunScenario(0xC4A05, Scenario::kMixedFaults, /*chaos=*/false, 1);
  const ScenarioRun chaos =
      RunScenario(0xC4A05, Scenario::kMixedFaults, /*chaos=*/true, 1);
  // The schedule really injected faults and the resilience machinery
  // really engaged — the equality below is not a fault-free tautology.
  EXPECT_GT(chaos.failures, 0u);
  EXPECT_GT(chaos.resilience_events, 0u);
  EXPECT_EQ(baseline.failures, 0u);
  ASSERT_EQ(baseline.results.size(), chaos.results.size());
  for (size_t i = 0; i < baseline.results.size(); ++i) {
    // Same answers; the per-query cost figures legitimately differ, so
    // compare only the result part (before the trace suffix).
    EXPECT_EQ(chaos.results[i].substr(0, chaos.results[i].find("|clock=")),
              baseline.results[i].substr(0,
                                         baseline.results[i].find("|clock=")))
        << "query " << i;
  }
}

TEST(Chaos, CorruptionChurnMatchesTheFaultFreeRun) {
  const ScenarioRun baseline =
      RunScenario(0xBADC0DE, Scenario::kCorruption, /*chaos=*/false, 1);
  const ScenarioRun chaos =
      RunScenario(0xBADC0DE, Scenario::kCorruption, /*chaos=*/true, 1);
  ASSERT_EQ(baseline.results.size(), chaos.results.size());
  for (size_t i = 0; i < baseline.results.size(); ++i) {
    EXPECT_EQ(chaos.results[i].substr(0, chaos.results[i].find("|clock=")),
              baseline.results[i].substr(0,
                                         baseline.results[i].find("|clock=")))
        << "query " << i;
  }
}

TEST(Chaos, BitIdenticalAcrossFanoutThreadCounts) {
  const ScenarioRun one =
      RunScenario(0x5EED, Scenario::kMixedFaults, /*chaos=*/true, 1);
  const ScenarioRun four =
      RunScenario(0x5EED, Scenario::kMixedFaults, /*chaos=*/true, 4);
  const ScenarioRun eight =
      RunScenario(0x5EED, Scenario::kMixedFaults, /*chaos=*/true, 8);
  EXPECT_EQ(one.fingerprint, four.fingerprint);
  EXPECT_EQ(one.fingerprint, eight.fingerprint);
  // The exported telemetry is part of the determinism contract too: the
  // metrics snapshot and the Chrome trace must be byte-identical for
  // every fan-out thread count.
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(one.metrics_json, eight.metrics_json);
  EXPECT_EQ(one.trace_json, four.trace_json);
  EXPECT_EQ(one.trace_json, eight.trace_json);
}

TEST(Chaos, BitIdenticalAcrossSameSeedRuns) {
  const ScenarioRun first =
      RunScenario(0xD0D0, Scenario::kMixedFaults, /*chaos=*/true, 4);
  const ScenarioRun second =
      RunScenario(0xD0D0, Scenario::kMixedFaults, /*chaos=*/true, 4);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.trace_json, second.trace_json);
}

}  // namespace
}  // namespace ssdb
