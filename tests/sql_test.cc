// Tests for the SQL front-end: parsing and end-to-end execution.

#include <gtest/gtest.h>

#include <set>

#include "client/sql.h"
#include "core/outsourced_db.h"

namespace ssdb {
namespace {

// --- Pure parsing -----------------------------------------------------------

TEST(SqlParse, SelectStarWithConjuncts) {
  auto cmd = ParseSql(
      "SELECT * FROM Employees WHERE salary BETWEEN 10000 AND 40000 "
      "AND dept = 2;");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  EXPECT_EQ(cmd->kind, SqlCommand::Kind::kSelect);
  EXPECT_EQ(cmd->query.table(), "Employees");
  ASSERT_EQ(cmd->query.predicates().size(), 2u);
  EXPECT_EQ(cmd->query.predicates()[0].kind, Predicate::Kind::kBetween);
  EXPECT_EQ(cmd->query.predicates()[0].lo, Value::Int(10000));
  EXPECT_EQ(cmd->query.predicates()[1].kind, Predicate::Kind::kEq);
  EXPECT_EQ(cmd->query.predicates()[1].eq, Value::Int(2));
  EXPECT_TRUE(cmd->query.projection().empty());
}

TEST(SqlParse, ProjectionAndStrings) {
  auto cmd = ParseSql("SELECT name, salary FROM Employees WHERE name = 'JOHN'");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->query.projection(),
            (std::vector<std::string>{"name", "salary"}));
  EXPECT_EQ(cmd->query.predicates()[0].eq, Value::Str("JOHN"));
}

TEST(SqlParse, Aggregates) {
  auto sum = ParseSql("SELECT SUM(salary) FROM Employees GROUP BY dept");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->query.aggregate(), AggregateOp::kSum);
  EXPECT_EQ(sum->query.aggregate_column(), "salary");
  EXPECT_EQ(sum->query.group_by(), "dept");

  auto count = ParseSql("SELECT COUNT(*) FROM Employees");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->query.aggregate(), AggregateOp::kCount);

  auto med = ParseSql("select median(salary) from Employees");
  ASSERT_TRUE(med.ok());  // keywords are case-insensitive
  EXPECT_EQ(med->query.aggregate(), AggregateOp::kMedian);
}

TEST(SqlParse, LikePrefixAndOrGroup) {
  auto cmd = ParseSql(
      "SELECT * FROM Employees WHERE dept = 1 AND "
      "(name LIKE 'AB%' OR name = 'ZOE')");
  ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
  ASSERT_EQ(cmd->query.predicates().size(), 1u);
  ASSERT_EQ(cmd->query.disjuncts().size(), 2u);
  EXPECT_EQ(cmd->query.disjuncts()[0].kind, Predicate::Kind::kPrefix);
  EXPECT_EQ(cmd->query.disjuncts()[0].prefix, "AB");
}

TEST(SqlParse, UpdateAndDelete) {
  auto upd = ParseSql("UPDATE Employees SET salary = 99000 WHERE name = 'JOHN'");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->kind, SqlCommand::Kind::kUpdate);
  EXPECT_EQ(upd->table, "Employees");
  EXPECT_EQ(upd->set_column, "salary");
  EXPECT_EQ(upd->set_value, Value::Int(99000));
  ASSERT_EQ(upd->where.size(), 1u);

  auto del = ParseSql("DELETE FROM Employees WHERE dept = 2");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, SqlCommand::Kind::kDelete);
}

TEST(SqlParse, QuotedQuoteAndNegativeNumber) {
  auto cmd = ParseSql("SELECT * FROM T WHERE name = 'O''HARA' AND x = -5");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->query.predicates()[0].eq, Value::Str("O'HARA"));
  EXPECT_EQ(cmd->query.predicates()[1].eq, Value::Int(-5));
}

TEST(SqlParse, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("DROP TABLE x").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM T").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T extra junk").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T WHERE a LIKE '%suffix'").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM T WHERE (a = 1 OR b = 2) AND (c = 3 OR d = 4)")
          .ok());
  EXPECT_FALSE(ParseSql("SELECT SUM(a), b FROM T").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM T WHERE a ! 3").ok());
}

// --- End-to-end through the engine --------------------------------------------

class SqlEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    db_ = std::move(OutsourcedDatabase::Create(options)).value();
    TableSchema schema;
    schema.table_name = "Employees";
    schema.columns = {
        StringColumn("name", 8),
        IntColumn("salary", 0, 1'000'000),
        IntColumn("dept", 0, 100),
    };
    ASSERT_TRUE(db_->CreateTable(schema).ok());
    ASSERT_TRUE(
        db_->Insert("Employees",
                    {
                        {Value::Str("JOHN"), Value::Int(20000), Value::Int(1)},
                        {Value::Str("ALICE"), Value::Int(35000), Value::Int(1)},
                        {Value::Str("BOB"), Value::Int(50000), Value::Int(2)},
                        {Value::Str("ABEL"), Value::Int(10000), Value::Int(2)},
                    })
            .ok());
  }

  std::unique_ptr<OutsourcedDatabase> db_;
};

TEST_F(SqlEndToEnd, PaperQueriesVerbatim) {
  // §III query classes, phrased as SQL.
  auto exact =
      db_->Execute("SELECT * FROM Employees WHERE name = 'JOHN'");
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_EQ(exact->rows.size(), 1u);
  EXPECT_EQ(exact->rows[0][1].AsInt(), 20000);

  auto range = db_->Execute(
      "SELECT * FROM Employees WHERE salary BETWEEN 10000 AND 40000");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->rows.size(), 3u);

  auto avg = db_->Execute(
      "SELECT AVG(salary) FROM Employees WHERE salary BETWEEN 10000 AND "
      "40000");
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->aggregate_double, (20000 + 35000 + 10000) / 3.0);
}

TEST_F(SqlEndToEnd, ProjectionPrefixGroupBy) {
  auto prefix =
      db_->Execute("SELECT name FROM Employees WHERE name LIKE 'A%'");
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  std::multiset<std::string> names;
  for (const auto& row : prefix->rows) {
    ASSERT_EQ(row.size(), 1u);
    names.insert(row[0].AsString());
  }
  EXPECT_EQ(names, (std::multiset<std::string>{"ALICE", "ABEL"}));

  auto grouped =
      db_->Execute("SELECT SUM(salary) FROM Employees GROUP BY dept");
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->groups.size(), 2u);
  int64_t total = 0;
  for (const auto& g : grouped->groups) total += g.sum;
  EXPECT_EQ(total, 115000);
}

TEST_F(SqlEndToEnd, OrGroupExecutes) {
  auto r = db_->Execute(
      "SELECT * FROM Employees WHERE (name = 'JOHN' OR salary BETWEEN "
      "45000 AND 60000)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);  // JOHN + BOB
}

TEST_F(SqlEndToEnd, UpdateAndDeleteStatements) {
  auto upd = db_->Execute(
      "UPDATE Employees SET salary = 77000 WHERE dept = 1");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->count, 2u);
  auto check = db_->Execute(
      "SELECT COUNT(*) FROM Employees WHERE salary = 77000");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->count, 2u);

  auto del = db_->Execute("DELETE FROM Employees WHERE salary = 77000");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->count, 2u);
  auto remaining = db_->Execute("SELECT * FROM Employees");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->rows.size(), 2u);
}

TEST_F(SqlEndToEnd, SemanticErrorsSurface) {
  EXPECT_FALSE(db_->Execute("SELECT * FROM Nope").ok());
  EXPECT_FALSE(db_->Execute("SELECT * FROM Employees WHERE nope = 1").ok());
  // Type mismatch: string column compared to int.
  EXPECT_FALSE(
      db_->Execute("SELECT * FROM Employees WHERE name = 5").ok());
}

}  // namespace
}  // namespace ssdb
