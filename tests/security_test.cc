// Security-property tests: what providers and wire observers can and
// cannot see, per the leakage budget of DESIGN.md §5 / docs/PROTOCOL.md.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t n, size_t k,
                                           const std::string& key) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.client.master_key = key;
  return std::move(OutsourcedDatabase::Create(options)).value();
}

TEST(Security, DeterministicSharesAreInjectivePerProvider) {
  // Distinct values must map to distinct det shares at each provider —
  // otherwise exact-match filtering would conflate values.
  auto db = MakeDb(3, 2, "inj");
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 100000)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  std::vector<std::vector<Value>> rows;
  for (int64_t v = 0; v < 2000; ++v) rows.push_back({Value::Int(v)});
  ASSERT_TRUE(db->Insert("T", rows).ok());
  for (size_t p = 0; p < 3; ++p) {
    auto table = db->provider(p).GetTableForTest(1);
    ASSERT_TRUE(table.ok());
    std::set<uint64_t> det_shares, op_lows;
    (*table)->ScanAll([&](const StoredRow& row) {
      det_shares.insert(row.cells[0].det);
      return true;
    });
    EXPECT_EQ(det_shares.size(), 2000u) << "provider " << p;
  }
}

TEST(Security, EqualityPatternIsTheOnlyDetLeak) {
  // Equal values share a det share (the leak); adjacent values give
  // unrelated shares (no structure an affine probe can exploit like the
  // straw-man's).
  auto db = MakeDb(2, 2, "pattern");
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 1000, kCapExactMatch)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  ASSERT_TRUE(db->Insert("T", {{Value::Int(7)}, {Value::Int(7)},
                               {Value::Int(8)}, {Value::Int(9)}})
                  .ok());
  auto table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(table.ok());
  std::vector<uint64_t> dets;
  (*table)->ScanAll([&](const StoredRow& row) {
    dets.push_back(row.cells[0].det);
    return true;
  });
  ASSERT_EQ(dets.size(), 4u);
  EXPECT_EQ(dets[0], dets[1]);  // equal values -> equal shares
  EXPECT_NE(dets[1], dets[2]);
  EXPECT_NE(dets[2], dets[3]);
  // No affine relation across consecutive values (unlike the straw-man):
  // det(8) - det(7) != det(9) - det(8) with overwhelming probability.
  EXPECT_NE(dets[2] - dets[1], dets[3] - dets[2]);
}

TEST(Security, RandomSharesDifferAcrossIdenticalRows) {
  // Two identical plaintext rows must still carry different random
  // shares (fresh polynomials per row) — the information-theoretic half
  // of the scheme must not degenerate into determinism.
  auto db = MakeDb(2, 2, "fresh");
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 1000, kCapNone)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  ASSERT_TRUE(db->Insert("T", {{Value::Int(5)}, {Value::Int(5)}}).ok());
  auto table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(table.ok());
  std::vector<uint64_t> secrets;
  (*table)->ScanAll([&](const StoredRow& row) {
    secrets.push_back(row.cells[0].secret);
    return true;
  });
  ASSERT_EQ(secrets.size(), 2u);
  EXPECT_NE(secrets[0], secrets[1]);
}

TEST(Security, SingleProviderSharesLookUniformForSecretColumns) {
  // Empirical necessary condition of the §III claim: a single provider's
  // random shares of a *constant* column are spread over the field, not
  // clustered near the constant.
  auto db = MakeDb(3, 2, "uniform");
  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {IntColumn("v", 0, 10, kCapNone)};
  ASSERT_TRUE(db->CreateTable(schema).ok());
  std::vector<std::vector<Value>> rows(500, {Value::Int(5)});
  ASSERT_TRUE(db->Insert("T", rows).ok());
  auto table = db->provider(0).GetTableForTest(1);
  ASSERT_TRUE(table.ok());
  size_t in_low_half = 0;
  (*table)->ScanAll([&](const StoredRow& row) {
    if (row.cells[0].secret < Fp61::kP / 2) ++in_low_half;
    return true;
  });
  EXPECT_GT(in_low_half, 180u);
  EXPECT_LT(in_low_half, 320u);
}

TEST(Security, RewrittenQueriesDifferPerProvider) {
  // The same plaintext query must hit every provider with different
  // bytes (each gets its own share of the constants) — a wire observer
  // comparing two legs learns shares, not values.
  auto db = MakeDb(3, 2, "wire");
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(1, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(20)).ok());
  db->ResetAllStats();
  ASSERT_TRUE(db->Execute(Query::Select("Employees")
                              .Where(Between("salary", Value::Int(1000),
                                             Value::Int(2000))))
                  .ok());
  // Indirect check via stats: both quorum providers received the same
  // *number* of bytes (same message shape)...
  const uint64_t sent0 = db->network().stats(0).bytes_sent;
  const uint64_t sent1 = db->network().stats(1).bytes_sent;
  EXPECT_EQ(sent0, sent1);
  // ... and the direct check: the rewritten op-share bounds differ, which
  // we verify through the providers' stored state being disjoint.
  auto t0 = db->provider(0).GetTableForTest(1);
  auto t1 = db->provider(1).GetTableForTest(1);
  ASSERT_TRUE(t0.ok() && t1.ok());
  std::set<u128> ops0, ops1;
  (*t0)->ScanAll([&](const StoredRow& row) {
    ops0.insert(row.cells[1].op);
    return true;
  });
  (*t1)->ScanAll([&](const StoredRow& row) {
    ops1.insert(row.cells[1].op);
    return true;
  });
  for (u128 s : ops0) EXPECT_EQ(ops1.count(s), 0u);
}

TEST(Security, FewerThanKProvidersCannotReconstruct) {
  // Structural check: k-1 shares admit EVERY candidate secret — for any
  // guess there is a consistent polynomial. We verify by showing that a
  // single share (k=2) interpolates to different "secrets" with
  // different assumed second shares, i.e. it pins down nothing.
  Rng rng(9);
  auto ctx = SharingContext::CreateRandom(3, 2, &rng);
  ASSERT_TRUE(ctx.ok());
  const auto shares = ctx->Split(Fp61::FromU64(12345), &rng);
  // Adversary holds provider 0's share and guesses provider 1's.
  std::set<uint64_t> reachable;
  for (uint64_t guess = 0; guess < 50; ++guess) {
    auto r = ctx->Reconstruct(
        {{0, shares[0]}, {1, Fp61::FromU64(guess * 7919)}});
    ASSERT_TRUE(r.ok());
    reachable.insert(r->value());
  }
  // Every guess yields a distinct consistent secret: the share alone
  // carries no information.
  EXPECT_EQ(reachable.size(), 50u);
}

TEST(Security, TagKeySeparatesTables) {
  // The same row content in two tables gets different integrity tags
  // (table id is bound into the tag).
  auto db = MakeDb(2, 2, "tags");
  TableSchema a;
  a.table_name = "A";
  a.columns = {IntColumn("v", 0, 100)};
  TableSchema b;
  b.table_name = "B";
  b.columns = {IntColumn("v", 0, 100)};
  ASSERT_TRUE(db->CreateTable(a).ok());
  ASSERT_TRUE(db->CreateTable(b).ok());
  ASSERT_TRUE(db->Insert("A", {{Value::Int(1)}}).ok());
  ASSERT_TRUE(db->Insert("B", {{Value::Int(1)}}).ok());
  auto ta = db->provider(0).GetTableForTest(1);
  auto tb = db->provider(0).GetTableForTest(2);
  ASSERT_TRUE(ta.ok() && tb.ok());
  uint64_t tag_a = 0, tag_b = 0;
  (*ta)->ScanAll([&](const StoredRow& r) {
    tag_a = r.tag;
    return true;
  });
  (*tb)->ScanAll([&](const StoredRow& r) {
    tag_b = r.tag;
    return true;
  });
  EXPECT_NE(tag_a, tag_b);
}

}  // namespace
}  // namespace ssdb
