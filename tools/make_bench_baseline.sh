#!/usr/bin/env bash
# Regenerates BENCH_baseline.json from pinned-iteration bench runs.
#
# Every benchmark runs with --benchmark_min_time=0, which settles at exactly
# one iteration, so counter magnitudes no longer depend on the iteration
# counts the benchmark library happens to pick. The metrics snapshots contain
# only virtual-clock (sim_us), byte and counter series -- wall time never
# enters the registry -- so the assembled file is byte-identical across
# machines, runs and fanout_threads. CI regenerates it and diffs against the
# checked-in copy (see .github/workflows/ci.yml, "bench smoke").
#
# Usage: tools/make_bench_baseline.sh [build_dir] [output_file]
set -eu

BUILD="${1:-build}"
OUT="${2:-BENCH_baseline.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD"/bench/bench_figure1 --benchmark_min_time=0 \
    --metrics_json="$TMP/figure1.json" > /dev/null
"$BUILD"/bench/bench_mixed_workload --benchmark_filter=BM_Mix \
    --benchmark_min_time=0 --metrics_json="$TMP/mix.json" > /dev/null
"$BUILD"/bench/bench_updates --benchmark_min_time=0 \
    --metrics_json="$TMP/updates.json" > /dev/null

{
  printf '{"comment": "Pinned-iteration (--benchmark_min_time=0) telemetry baseline. Regenerate with tools/make_bench_baseline.sh; CI diffs a fresh capture against this file byte-for-byte. Only sim_us/bytes/counter series appear here (never wall time), so any diff means modelled behavior changed.",\n'
  printf ' "bench_figure1": %s,\n' "$(cat "$TMP/figure1.json")"
  printf ' "bench_mixed_workload": %s,\n' "$(cat "$TMP/mix.json")"
  printf ' "bench_updates": %s}\n' "$(cat "$TMP/updates.json")"
} > "$OUT"

echo "wrote $OUT"
