#!/usr/bin/env bash
# Fails when a metric series name used in src/ is missing from the
# Telemetry catalogue in docs/PROTOCOL.md. Keeps the docs honest: every
# ssdb_* series an instrumented layer charges must be documented.
#
# Usage: tools/check_metric_catalogue.sh  (from anywhere; repo-relative)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
src_dir="$repo_root/src"
catalogue="$repo_root/docs/PROTOCOL.md"

if [ ! -f "$catalogue" ]; then
  echo "check_metric_catalogue: $catalogue not found" >&2
  exit 1
fi

# Metric names are always string literals at the registration site.
names=$(grep -rhoE '"ssdb_[a-z0-9_]+"' "$src_dir" | tr -d '"' | sort -u)

missing=0
for name in $names; do
  if ! grep -q "$name" "$catalogue"; then
    echo "check_metric_catalogue: '$name' used in src/ but missing from docs/PROTOCOL.md" >&2
    missing=1
  fi
done

# Series that must exist in BOTH src/ and the catalogue: guards against
# an instrumented layer being deleted while its docs (or tests) still
# reference it. Extend this list when a subsystem adds a series family.
required="
ssdb_net_batch_envelopes_total
ssdb_net_batch_ops_total
ssdb_net_batch_ops_per_envelope
ssdb_shard_requests_total
ssdb_shard_bytes_sent_total
ssdb_shard_bytes_received_total
ssdb_wal_appends_total
ssdb_wal_bytes_total
ssdb_wal_checkpoints_total
ssdb_recovery_replayed_records_total
ssdb_recovery_truncated_bytes_total
ssdb_recovery_restarts_total
ssdb_recovery_resync_ops_total
ssdb_traffic_offered_total
ssdb_traffic_completed_total
ssdb_traffic_failed_total
ssdb_traffic_latency_us
ssdb_traffic_queue_delay_us
ssdb_traffic_service_us
ssdb_admission_admitted_total
ssdb_admission_rejected_total
ssdb_meter_requests_total
ssdb_meter_bytes_sent_total
ssdb_meter_bytes_received_total
ssdb_meter_rounds_total
ssdb_meter_clock_us_total
ssdb_meter_cost_microcredits_total
ssdb_monitor_windows_total
ssdb_monitor_windows_dropped_total
ssdb_monitor_slow_queries_total
ssdb_alerts_fired_total
ssdb_alerts_resolved_total
"
for name in $required; do
  if ! echo "$names" | grep -qx "$name"; then
    echo "check_metric_catalogue: required series '$name' is no longer charged anywhere in src/" >&2
    missing=1
  fi
  if ! grep -q "$name" "$catalogue"; then
    echo "check_metric_catalogue: required series '$name' missing from docs/PROTOCOL.md" >&2
    missing=1
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "check_metric_catalogue: FAILED — document the series above in the Telemetry catalogue" >&2
  exit 1
fi
echo "check_metric_catalogue: OK ($(echo "$names" | wc -l) series documented)"
