// Privacy-preserving document intersection (§II.A's cost anecdote).
//
// Runs both intersection protocols on the paper's quoted configuration —
// a 10-document site against a 100-document site, 1000 words each — and
// prints time and bytes for each, plus the ratio. The paper quotes
// ~2 hours / ~3 Gbit for the encryption-based approach on 2009 hardware;
// the shape to observe here is the encryption/sharing cost ratio, not the
// absolute numbers.
//
//   ./build/examples/example_document_intersection [docs_a docs_b words]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "workload/generators.h"
#include "workload/intersection.h"

using namespace ssdb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  size_t docs_a = 10, docs_b = 100, words = 1000;
  if (argc > 3) {
    docs_a = static_cast<size_t>(std::atoll(argv[1]));
    docs_b = static_cast<size_t>(std::atoll(argv[2]));
    words = static_cast<size_t>(std::atoll(argv[3]));
  }
  std::printf("site A: %zu documents x %zu words; site B: %zu x %zu\n",
              docs_a, words, docs_b, words);

  DocumentGenerator gen_a(11, 200000), gen_b(22, 200000);
  const auto corpus_a = gen_a.Corpus(docs_a, words);
  const auto corpus_b = gen_b.Corpus(docs_b, words);

  Rng rng(33);
  StopWatch enc_watch;
  auto enc = EncryptedIntersection(corpus_a, corpus_b, &rng);
  const double enc_ms = enc_watch.ElapsedMillis();

  StopWatch shared_watch;
  auto shared = SharedIntersection(corpus_a, corpus_b, /*n=*/4, /*k=*/2,
                                   /*key_seed=*/44);
  const double shared_ms = shared_watch.ElapsedMillis();

  if (!enc.ok() || !shared.ok()) {
    std::fprintf(stderr, "protocol failure\n");
    return 1;
  }

  std::printf("\n%-28s %12s %14s %12s\n", "protocol", "time (ms)",
              "bytes moved", "matches");
  std::printf("%-28s %12.1f %14llu %12zu   (%llu modexp ops)\n",
              "commutative encryption", enc_ms,
              static_cast<unsigned long long>(enc->bytes_transferred),
              enc->matches,
              static_cast<unsigned long long>(enc->modexp_ops));
  std::printf("%-28s %12.1f %14llu %12zu   (%llu PRF ops)\n",
              "secret sharing (n=4)", shared_ms,
              static_cast<unsigned long long>(shared->bytes_transferred),
              shared->matches,
              static_cast<unsigned long long>(shared->prf_ops));
  std::printf("\nspeedup of sharing over encryption: %.1fx compute\n",
              shared_ms > 0 ? enc_ms / shared_ms : 0.0);
  std::printf("(the paper quotes ~2h / ~3 Gbit for the encrypted protocol "
              "on its 2009 testbed at this size)\n");
  return enc->matches == shared->matches ? 0 : 1;
}
