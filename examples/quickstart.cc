// Quickstart: the paper's running example, end to end.
//
// Reproduces Section III / Figure 1 literally — salaries
// {10, 20, 40, 60, 80} split with n = 3, k = 2 and X = {2, 4, 1} — then
// runs each query class of §III (exact match, range, aggregates) through
// the full OutsourcedDatabase stack.
//
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/outsourced_db.h"
#include "field/poly.h"
#include "sss/shamir.h"

using namespace ssdb;  // NOLINT: example brevity

namespace {

// Part 1: Figure 1 verbatim — the concrete polynomials of the paper.
void Figure1() {
  std::printf("=== Figure 1: secret-sharing the salary column ===\n");
  std::printf("n = 3 providers, k = 2, X = {x1=2, x2=4, x3=1}\n\n");

  const uint64_t salaries[5] = {10, 20, 40, 60, 80};
  const uint64_t slopes[5] = {100, 5, 1, 2, 4};
  const Fp61 xs[3] = {Fp61::FromU64(2), Fp61::FromU64(4), Fp61::FromU64(1)};

  std::printf("%-10s %-18s %8s %8s %8s\n", "salary", "polynomial", "DAS1",
              "DAS2", "DAS3");
  for (int i = 0; i < 5; ++i) {
    FpPoly q({Fp61::FromU64(salaries[i]), Fp61::FromU64(slopes[i])});
    std::printf("%-10llu q(x) = %3llux + %-4llu %8llu %8llu %8llu\n",
                static_cast<unsigned long long>(salaries[i]),
                static_cast<unsigned long long>(slopes[i]),
                static_cast<unsigned long long>(salaries[i]),
                static_cast<unsigned long long>(q.Eval(xs[0]).value()),
                static_cast<unsigned long long>(q.Eval(xs[1]).value()),
                static_cast<unsigned long long>(q.Eval(xs[2]).value()));
  }

  // Reconstruction from any 2 providers.
  auto ctx = SharingContext::Create(
      3, 2, {Fp61::FromU64(2), Fp61::FromU64(4), Fp61::FromU64(1)});
  FpPoly q10({Fp61::FromU64(10), Fp61::FromU64(100)});
  auto rec = ctx->Reconstruct(
      {{0, q10.Eval(Fp61::FromU64(2))}, {2, q10.Eval(Fp61::FromU64(1))}});
  std::printf("\nreconstructing salary 10 from DAS1 + DAS3 shares: %llu\n\n",
              static_cast<unsigned long long>(rec->value()));
}

// Part 2: the same scenario through the full system.
int FullSystem() {
  std::printf("=== Full system: Employees outsourced to 3 providers ===\n");
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_r.value();

  TableSchema schema;
  schema.table_name = "Employees";
  schema.columns = {StringColumn("name", 8),
                    IntColumn("salary", 0, 1'000'000)};
  if (!db.CreateTable(schema).ok()) return 1;
  (void)db.Insert("Employees", {
                                   {Value::Str("JOHN"), Value::Int(10000)},
                                   {Value::Str("ALICE"), Value::Int(20000)},
                                   {Value::Str("BOB"), Value::Int(40000)},
                                   {Value::Str("CAROL"), Value::Int(60000)},
                                   {Value::Str("JOHN"), Value::Int(80000)},
                               });

  // §III query 1: exact match.
  auto exact = db.Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  std::printf("employees named JOHN: %zu rows\n", exact->rows.size());
  for (const auto& row : exact->rows) {
    std::printf("  %-8s salary=%lld\n", row[0].AsString().c_str(),
                static_cast<long long>(row[1].AsInt()));
  }

  // §III query 2: range.
  auto range = db.Execute(Query::Select("Employees")
                              .Where(Between("salary", Value::Int(10000),
                                             Value::Int(40000))));
  std::printf("salary in [10K, 40K]: %zu rows\n", range->rows.size());

  // §III query 3: aggregates.
  auto avg = db.Execute(Query::Select("Employees")
                            .Where(Eq("name", Value::Str("JOHN")))
                            .Aggregate(AggregateOp::kAvg, "salary"));
  std::printf("AVG(salary) where name = JOHN: %.1f\n", avg->aggregate_double);
  auto med = db.Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"));
  std::printf("MEDIAN(salary): %lld\n",
              static_cast<long long>(med->aggregate_int));

  const ChannelStats net = db.network_stats();
  std::printf(
      "\nnetwork: %llu calls, %llu bytes up, %llu bytes down, "
      "%.1f ms simulated WAN time\n",
      static_cast<unsigned long long>(net.calls),
      static_cast<unsigned long long>(net.bytes_sent),
      static_cast<unsigned long long>(net.bytes_received),
      static_cast<double>(db.simulated_time_us()) / 1000.0);
  return 0;
}

}  // namespace

int main() {
  Figure1();
  return FullSystem();
}
