// Private x public data mash-up (§V.D).
//
// Two scenarios from the paper:
//   1. A client's private list of friends (with zipcodes) joined against a
//      provider-hosted public restaurant directory — "restaurants close to
//      a friend's house, without revealing any private information about
//      the friend".
//   2. A watch-list screening sketch: a private watch list checked against
//      a public traveller manifest.
//
// The client subscribes to the public join column once (it is public, so
// the one-time download leaks nothing), attaches a keyed share index at
// every provider, and afterwards filters the public table with share-space
// predicates. See DESIGN.md §5 for the threat-model discussion (the
// hosting provider knows the public plaintexts, so per-query privacy
// against *that* provider requires PIR — also demonstrated in
// examples/pir_demo.cc).
//
//   ./build/examples/example_private_public_mashup

#include <cstdio>

#include "core/outsourced_db.h"

using namespace ssdb;  // NOLINT: example brevity

int main() {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) return 1;
  auto& db = *db_r.value();

  // --- Scenario 1: friends x restaurants --------------------------------
  std::printf("=== friends x restaurants ===\n");
  TableSchema friends;
  friends.table_name = "Friends";
  friends.columns = {
      StringColumn("name", 10),
      IntColumn("zipcode", 10000, 99999, kCapExactMatch | kCapRange, "zip"),
  };
  (void)db.CreateTable(friends);
  (void)db.Insert("Friends", {
                                 {Value::Str("ALICE"), Value::Int(93106)},
                                 {Value::Str("BOB"), Value::Int(94043)},
                                 {Value::Str("CANDICE"), Value::Int(10001)},
                             });

  std::vector<ColumnSpec> restaurant_cols = {
      IntColumn("zipcode", 10000, 99999, kCapExactMatch | kCapRange, "zip"),
      StringColumn("rname", 12),
  };
  (void)db.PublishPublicTable(
      "Restaurants", restaurant_cols,
      {
          {Value::Int(93106), Value::Str("CAMPUSCAFE")},
          {Value::Int(93106), Value::Str("LAGOONGRILL")},
          {Value::Int(93105), Value::Str("MESAVERDE")},
          {Value::Int(94043), Value::Str("BAYVIEW")},
          {Value::Int(10001), Value::Str("EMPIREDELI")},
          {Value::Int(60601), Value::Str("LOOPDINER")},
      });
  (void)db.SubscribePublicColumn("Restaurants", "zipcode");

  // For each friend: look up the zipcode privately, then range-filter the
  // public table in share space (zip +- 1 as the "close to" notion).
  auto all_friends = db.Execute(Query::Select("Friends"));
  for (const auto& friend_row : all_friends->rows) {
    const int64_t zip = friend_row[1].AsInt();
    auto nearby = db.QueryPublic(
        "Restaurants",
        Between("zipcode", Value::Int(zip - 1), Value::Int(zip + 1)));
    std::printf("near %s:\n", friend_row[0].AsString().c_str());
    for (const auto& r : nearby->rows) {
      std::printf("    %-12s (zip %lld)\n", r[1].AsString().c_str(),
                  static_cast<long long>(r[0].AsInt()));
    }
  }

  // --- Scenario 2: watch list x traveller manifest ----------------------
  std::printf("\n=== watch list x traveller manifest ===\n");
  TableSchema watch;
  watch.table_name = "WatchList";
  watch.columns = {
      IntColumn("subject_id", 0, 10'000'000, kCapExactMatch | kCapRange,
                "person"),
  };
  (void)db.CreateTable(watch);
  (void)db.Insert("WatchList", {{Value::Int(180'001)},
                                {Value::Int(423'517)},
                                {Value::Int(7'772'301)}});

  std::vector<ColumnSpec> manifest_cols = {
      IntColumn("traveller_id", 0, 10'000'000, kCapExactMatch | kCapRange,
                "person"),
      StringColumn("flight", 6),
  };
  (void)db.PublishPublicTable("SfoManifest", manifest_cols,
                              {
                                  {Value::Int(423'517), Value::Str("UA512")},
                                  {Value::Int(88'001), Value::Str("AA100")},
                                  {Value::Int(7'772'301), Value::Str("DL44")},
                                  {Value::Int(5), Value::Str("WN2020")},
                              });
  (void)db.SubscribePublicColumn("SfoManifest", "traveller_id");

  auto subjects = db.Execute(Query::Select("WatchList"));
  size_t alerts = 0;
  for (const auto& row : subjects->rows) {
    auto hit = db.QueryPublic("SfoManifest",
                              Eq("traveller_id", Value::Int(row[0].AsInt())));
    for (const auto& traveller : hit->rows) {
      std::printf("  ALERT: subject %lld on flight %s\n",
                  static_cast<long long>(traveller[0].AsInt()),
                  traveller[1].AsString().c_str());
      ++alerts;
    }
  }
  std::printf("%zu alert(s); the manifest host never saw the watch list in "
              "plaintext.\n",
              alerts);
  return 0;
}
