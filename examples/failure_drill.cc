// Operational failure drill.
//
// Walks the §VI(b) failure-model story end to end on a live deployment:
//   1. normal operation,
//   2. provider outages up to n-k (reads keep answering),
//   3. a corrupting provider (reads self-heal via consistency checks),
//   4. crash + restart from a snapshot,
//   5. proactive share refresh after a suspected share leak,
//   6. a durable deployment surviving a kill/restart (WAL + snapshot
//      recovery plus client-side catch-up of the writes it missed).
//
//   ./build/examples/example_failure_drill

#include <cstdio>
#include <filesystem>

#include "core/outsourced_db.h"
#include "workload/generators.h"

using namespace ssdb;  // NOLINT: example brevity

namespace {

void Check(OutsourcedDatabase* db, const char* phase) {
  auto r = db->Execute(
      "SELECT AVG(salary) FROM Employees WHERE salary BETWEEN 50000 AND "
      "150000");
  if (r.ok()) {
    std::printf("  [%-28s] AVG query OK (avg = %.0f over %llu rows)\n", phase,
                r->aggregate_double,
                static_cast<unsigned long long>(r->count));
  } else {
    std::printf("  [%-28s] AVG query FAILED: %s\n", phase,
                r.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) return 1;
  auto& db = *db_r.value();

  if (!db.CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) return 1;
  EmployeeGenerator gen(7, Distribution::kUniform);
  if (!db.Insert("Employees", gen.Rows(5000)).ok()) return 1;
  std::printf("deployment: 5000 rows across n=5 providers, k=2\n\n");

  Check(&db, "healthy");

  std::printf("\n-- outage drill: taking providers down one by one --\n");
  for (size_t p = 0; p < 4; ++p) {
    db.faults().Down(p);
    char phase[64];
    std::snprintf(phase, sizeof(phase), "%zu of 5 providers down", p + 1);
    Check(&db, phase);
  }
  db.faults().HealAll();

  std::printf("\n-- corruption drill: DAS2 flips bytes in every response --\n");
  {
    ScopedFault corrupting(db.faults(), 1, FailureMode::kCorruptResponse);
    Check(&db, "1 corrupting provider");
    std::printf("  corruption retries so far: %llu\n",
                static_cast<unsigned long long>(
                    db.client_stats().corruption_retries));
  }  // DAS2 heals when the fault leaves scope

  std::printf("\n-- crash drill: snapshot DAS3, wipe, restore --\n");
  const std::string snap = "/tmp/ssdb_drill_das3.snapshot";
  if (!db.provider(2).SaveSnapshotToFile(snap).ok()) return 1;
  std::printf("  snapshot written (%s)\n", snap.c_str());
  if (!db.provider(2).LoadSnapshotFromFile(snap).ok()) return 1;
  std::printf("  DAS3 restarted from snapshot\n");
  Check(&db, "after restart");
  std::remove(snap.c_str());

  std::printf("\n-- leak drill: shares may have been exposed; refresh --\n");
  const Status refreshed = db.RefreshTable("Employees");
  std::printf("  refresh: %s\n", refreshed.ToString().c_str());
  Check(&db, "after proactive refresh");

  std::printf("\n-- kill drill: durable DAS2 dies mid-workload, restarts --\n");
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "ssdb_drill_durable")
            .string();
    std::filesystem::remove_all(dir);
    OutsourcedDbOptions durable;
    durable.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    durable.storage.backend = StorageOptions::Backend::kDurable;
    durable.storage.dir = dir;
    auto ddb_r = OutsourcedDatabase::Create(durable);
    if (!ddb_r.ok()) return 1;
    auto& ddb = *ddb_r.value();
    if (!ddb.CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) return 1;
    EmployeeGenerator dgen(11, Distribution::kUniform);
    if (!ddb.BulkLoad("Employees", dgen.Rows(2000)).ok()) return 1;

    ddb.faults().Kill(1);  // RAM state gone, link down, outage opens
    Check(&ddb, "DAS2 killed (3 alive)");
    // Writes issued while DAS2 is dead land on the survivors; its share
    // legs queue client-side for catch-up.
    if (!ddb.Insert("Employees", dgen.Rows(50)).ok()) return 1;
    std::printf("  queued catch-up ops for DAS2: %llu\n",
                static_cast<unsigned long long>(ddb.client().pending_resync_ops(1)));

    // Restart: snapshot + WAL replay on disk, then the queue drains in
    // batch envelopes and the scoreboard entry resets.
    if (!ddb.faults().Restart(1).ok()) return 1;
    std::printf("  DAS2 recovered (%llu rows back, queue drained to %llu)\n",
                static_cast<unsigned long long>(ddb.provider(1).num_rows()),
                static_cast<unsigned long long>(ddb.client().pending_resync_ops(1)));
    Check(&ddb, "after kill/restart");
    std::filesystem::remove_all(dir);
  }

  std::printf("\ndrill complete. network totals: %llu calls, %.2f MB\n",
              static_cast<unsigned long long>(db.network_stats().calls),
              static_cast<double>(db.network_stats().total_bytes()) / 1e6);
  return 0;
}
