// Medical-records scenario (§II.A's motivating anecdote, scaled down).
//
// Outsources a synthetic medical-records table, runs the analytical
// query mix the paper motivates (range selections, aggregates), performs
// updates, and demonstrates fault tolerance by taking providers down mid
// workload.
//
//   ./build/examples/example_medical_records [num_records]

#include <cstdio>
#include <cstdlib>

#include "core/outsourced_db.h"
#include "workload/generators.h"

using namespace ssdb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  size_t num_records = 20000;
  if (argc > 1) num_records = static_cast<size_t>(std::atoll(argv[1]));

  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/3);
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) {
    std::fprintf(stderr, "%s\n", db_r.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_r.value();

  std::printf("outsourcing %zu medical records to n=5 providers (k=3)...\n",
              num_records);
  if (!db.CreateTable(MedicalGenerator::MedicalSchema()).ok()) return 1;
  MedicalGenerator gen(2026);
  StopWatch load;
  const Status st = db.Insert("Medical", gen.Rows(num_records));
  if (!st.ok()) {
    std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  loaded in %.1f ms CPU, %llu bytes shipped\n",
              load.ElapsedMillis(),
              static_cast<unsigned long long>(
                  db.network_stats().bytes_sent));

  // Analytical queries.
  auto seniors = db.Execute(Query::Select("Medical")
                                .Where(Between("age", Value::Int(65),
                                               Value::Int(99)))
                                .Aggregate(AggregateOp::kCount));
  std::printf("patients aged 65+: %llu\n",
              static_cast<unsigned long long>(seniors->count));

  auto avg_cost = db.Execute(Query::Select("Medical")
                                 .Where(Between("age", Value::Int(65),
                                                Value::Int(99)))
                                 .Aggregate(AggregateOp::kAvg, "cost"));
  std::printf("average treatment cost for seniors: %.0f cents\n",
              avg_cost->aggregate_double);

  auto expensive = db.Execute(Query::Select("Medical")
                                  .Where(Eq("diagnosis", Value::Int(4242)))
                                  .Aggregate(AggregateOp::kMax, "cost"));
  if (expensive.ok() && !expensive->rows.empty()) {
    std::printf("most expensive case of diagnosis 4242: %lld cents\n",
                static_cast<long long>(expensive->aggregate_int));
  }

  // Updates (§V.C): re-price one diagnosis code.
  auto updated = db.Update("Medical", {Eq("diagnosis", Value::Int(4242))},
                           "cost", Value::Int(500000));
  std::printf("re-priced %llu rows of diagnosis 4242\n",
              static_cast<unsigned long long>(updated.value_or(0)));

  // Fault tolerance: lose n-k providers and keep querying.
  db.faults().Down(0);
  db.faults().Down(4);
  auto degraded = db.Execute(Query::Select("Medical")
                                 .Where(Between("age", Value::Int(0),
                                                Value::Int(1)))
                                 .Aggregate(AggregateOp::kCount));
  std::printf("with 2/5 providers down, COUNT(age<=1) still answers: %s "
              "(%llu rows)\n",
              degraded.ok() ? "yes" : degraded.status().ToString().c_str(),
              static_cast<unsigned long long>(
                  degraded.ok() ? degraded->count : 0));

  // One corrupt provider: reads self-heal via share consistency checks.
  db.faults().HealAll();
  db.faults().Corrupt(2);
  auto healed = db.Execute(Query::Select("Medical")
                               .Where(Eq("diagnosis", Value::Int(4242))));
  std::printf("with 1 provider corrupting responses, reads %s "
              "(corruption retries so far: %llu)\n",
              healed.ok() ? "still reconstruct correctly" : "fail",
              static_cast<unsigned long long>(
                  db.client_stats().corruption_retries));

  const ChannelStats net = db.network_stats();
  std::printf("\ntotals: %llu network calls, %.2f MB moved, %.1f ms "
              "simulated WAN time\n",
              static_cast<unsigned long long>(net.calls),
              static_cast<double>(net.total_bytes()) / 1e6,
              static_cast<double>(db.simulated_time_us()) / 1000.0);
  return 0;
}
