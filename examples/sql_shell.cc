// A small SQL shell against an outsourced Employees database.
//
// Demonstrates the SQL front-end: statements are parsed, rewritten into
// share space, executed at the providers, and reconstructed — the
// plaintext never leaves this process. Prefix a SELECT with EXPLAIN to
// render its plan without running it, or with TRACE to run it and dump
// the per-node execution trace (provider legs, exact bytes, virtual-clock
// charges). With no arguments a scripted demo session runs; pass
// statements as arguments to run your own, e.g.
//
//   ./build/examples/example_sql_shell "SELECT name, salary FROM
//   Employees WHERE salary BETWEEN 20000 AND 60000" "EXPLAIN SELECT
//   SUM(salary) FROM Employees GROUP BY dept" "TRACE SELECT name FROM
//   Employees WHERE name LIKE 'BA%'"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "workload/generators.h"

using namespace ssdb;  // NOLINT: example brevity

namespace {

void PrintResult(const QueryResult& result) {
  if (!result.groups.empty()) {
    std::printf("  %-12s %14s %8s %14s\n", "group", "sum", "count", "avg");
    for (const auto& g : result.groups) {
      std::printf("  %-12s %14lld %8llu %14.1f\n", g.key.ToString().c_str(),
                  static_cast<long long>(g.sum),
                  static_cast<unsigned long long>(g.count), g.average);
    }
    return;
  }
  if (!result.rows.empty()) {
    for (const auto& row : result.rows) {
      std::printf(" ");
      for (const Value& v : row) std::printf(" %s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("  (%zu rows)\n", result.rows.size());
    return;
  }
  std::printf("  result: %lld (count %llu, avg %.2f)\n",
              static_cast<long long>(result.aggregate_int),
              static_cast<unsigned long long>(result.count),
              result.aggregate_double);
}

/// Strips a leading shell keyword ("EXPLAIN" / "TRACE"); returns true and
/// the remainder when present.
bool ConsumeKeyword(const std::string& sql, const char* keyword,
                    std::string* rest) {
  size_t start = sql.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  const std::string word = keyword;
  if (sql.compare(start, word.size(), word) != 0) return false;
  const size_t after = start + word.size();
  if (after >= sql.size() || (sql[after] != ' ' && sql[after] != '\t')) {
    return false;
  }
  *rest = sql.substr(after + 1);
  return true;
}

/// Trims surrounding whitespace (file names for the EXPORT commands).
std::string Trim(const std::string& s) {
  const size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  const size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::printf("  error: cannot open '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

bool RunStatement(OutsourcedDatabase& db, const std::string& sql) {
  std::string rest;
  // METRICS prints the Prometheus exposition of every ssdb_* series;
  // METRICS EXPORT <file> writes the JSON snapshot instead.
  if (Trim(sql) == "METRICS") {
    std::printf("%s", db.metrics().ExportPrometheus().c_str());
    return true;
  }
  if (ConsumeKeyword(sql, "METRICS", &rest)) {
    std::string path;
    if (!ConsumeKeyword(rest, "EXPORT", &path) || Trim(path).empty()) {
      std::printf("  error: usage: METRICS [EXPORT <file>]\n");
      return false;
    }
    if (!WriteFile(Trim(path), db.metrics().ExportJson())) return false;
    std::printf("  metrics JSON written to %s\n", Trim(path).c_str());
    return true;
  }
  // TRACE EXPORT <file> dumps every span recorded so far as Chrome
  // trace-event JSON (load in chrome://tracing or Perfetto).
  if (ConsumeKeyword(sql, "TRACE", &rest)) {
    std::string path;
    if (ConsumeKeyword(rest, "EXPORT", &path)) {
      if (Trim(path).empty()) {
        std::printf("  error: usage: TRACE EXPORT <file>\n");
        return false;
      }
      if (!WriteFile(Trim(path), db.tracer().ExportChromeTrace())) {
        return false;
      }
      std::printf("  %zu spans written to %s\n", db.tracer().span_count(),
                  Trim(path).c_str());
      return true;
    }
  }
  if (ConsumeKeyword(sql, "EXPLAIN", &rest)) {
    auto cmd = ParseSql(rest);
    if (!cmd.ok()) {
      std::printf("  error: %s\n", cmd.status().ToString().c_str());
      return false;
    }
    if (cmd->kind != SqlCommand::Kind::kSelect) {
      std::printf("  error: EXPLAIN supports SELECT statements\n");
      return false;
    }
    auto plan = db.Explain(cmd->query);
    if (!plan.ok()) {
      std::printf("  error: %s\n", plan.status().ToString().c_str());
      return false;
    }
    std::printf("%s", plan->c_str());
    return true;
  }
  if (ConsumeKeyword(sql, "TRACE", &rest)) {
    auto result = db.Execute(rest);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return false;
    }
    PrintResult(*result);
    std::printf("%s", result->trace.ToString().c_str());
    const QueryTrace& t = result->trace;
    std::printf("  totals: up=%lluB down=%lluB clock=%lluus legs=%llu",
                static_cast<unsigned long long>(t.total_bytes_sent()),
                static_cast<unsigned long long>(t.total_bytes_received()),
                static_cast<unsigned long long>(t.total_clock_us()),
                static_cast<unsigned long long>(t.total_provider_legs()));
    if (t.total_attempts() != 0 || t.total_hedged() != 0 ||
        t.total_deadline_exceeded() != 0 || t.total_breaker_skips() != 0) {
      std::printf(" retries=%llu hedged=%llu deadline_exceeded=%llu "
                  "breaker_skips=%llu",
                  static_cast<unsigned long long>(t.total_attempts()),
                  static_cast<unsigned long long>(t.total_hedged()),
                  static_cast<unsigned long long>(t.total_deadline_exceeded()),
                  static_cast<unsigned long long>(t.total_breaker_skips()));
    }
    std::printf("\n");
    return true;
  }
  auto result = db.Execute(sql);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return false;
  }
  PrintResult(*result);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OutsourcedDbOptions options;
  options.n = 4;
  options.client.k = 2;
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) return 1;
  auto& db = *db_r.value();

  // Record spans for every statement so TRACE EXPORT has a full session
  // timeline; the tracer is off by default elsewhere.
  db.tracer().Enable(true);

  if (!db.CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) return 1;
  EmployeeGenerator gen(2026, Distribution::kUniform);
  if (!db.Insert("Employees", gen.Rows(1000)).ok()) return 1;
  std::printf("Employees: 1000 rows outsourced to 4 providers (k=2)\n\n");

  std::vector<std::string> statements;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) statements.emplace_back(argv[i]);
  } else {
    statements = {
        "SELECT COUNT(*) FROM Employees",
        "SELECT name, salary FROM Employees WHERE salary BETWEEN 199000 AND "
        "200000",
        "SELECT MEDIAN(salary) FROM Employees",
        "SELECT AVG(salary) FROM Employees WHERE dept = 7",
        "SELECT SUM(salary) FROM Employees WHERE dept BETWEEN 0 AND 3 GROUP "
        "BY dept",
        "EXPLAIN SELECT SUM(salary) FROM Employees WHERE dept = 7",
        "SELECT name FROM Employees WHERE name LIKE 'BA%'",
        "TRACE SELECT name FROM Employees WHERE name LIKE 'BA%'",
        "UPDATE Employees SET salary = 123456 WHERE dept = 99",
        "SELECT MAX(salary) FROM Employees WHERE dept = 99",
        "DELETE FROM Employees WHERE dept = 99",
        "SELECT COUNT(*) FROM Employees",
        "METRICS",
        "TRACE EXPORT sql_shell_trace.json",
    };
  }

  for (const std::string& sql : statements) {
    std::printf("ssdb> %s\n", sql.c_str());
    RunStatement(db, sql);
    std::printf("\n");
  }

  const ChannelStats net = db.network_stats();
  std::printf("session totals: %llu provider calls, %.1f kB moved\n",
              static_cast<unsigned long long>(net.calls),
              static_cast<double>(net.total_bytes()) / 1000.0);
  return 0;
}
