// A small SQL shell against an outsourced Employees database.
//
// Demonstrates the SQL front-end: statements are parsed, rewritten into
// share space, executed at the providers, and reconstructed — the
// plaintext never leaves this process. Prefix a SELECT with EXPLAIN to
// render its plan without running it, or with TRACE to run it and dump
// the per-node execution trace (provider legs, exact bytes, virtual-clock
// charges). TOPOLOGY prints the shard map: per-group row counts, wire
// totals and each provider's scoreboard health. Every statement is
// metered under tenant "shell" and fed to a session monitor: MONITOR
// prints the closed 200ms windows (counts, percentiles, slow queries),
// METER the cumulative meter and bill, ALERTS the alert event log. With
// no arguments a scripted demo session runs; pass
// statements as arguments to run your own, e.g.
//
//   ./build/examples/example_sql_shell "SELECT name, salary FROM
//   Employees WHERE salary BETWEEN 20000 AND 60000" "EXPLAIN SELECT
//   SUM(salary) FROM Employees GROUP BY dept" "TRACE SELECT name FROM
//   Employees WHERE name LIKE 'BA%'"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "obs/monitor.h"
#include "workload/generators.h"

using namespace ssdb;  // NOLINT: example brevity

namespace {

/// The shell meters every statement under tenant "shell" and feeds a
/// session-scoped Monitor, so MONITOR / METER / ALERTS have live data.
struct ShellSession {
  Monitor monitor;
  uint32_t seq = 0;
};

MeterSample ReadShellMeter(OutsourcedDatabase& db) {
  const MetricLabels t = {{"tenant", "shell"}};
  const MetricsRegistry& reg = db.metrics();
  MeterSample m;
  m.requests = reg.CounterValue("ssdb_meter_requests_total", t);
  m.bytes_sent = reg.CounterValue("ssdb_meter_bytes_sent_total", t);
  m.bytes_received = reg.CounterValue("ssdb_meter_bytes_received_total", t);
  m.rounds = reg.CounterValue("ssdb_meter_rounds_total", t);
  m.clock_us = reg.CounterValue("ssdb_meter_clock_us_total", t);
  return m;
}

MeterSample MeterDelta(const MeterSample& after, const MeterSample& before) {
  MeterSample d;
  d.requests = after.requests - before.requests;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.bytes_received = after.bytes_received - before.bytes_received;
  d.rounds = after.rounds - before.rounds;
  d.clock_us = after.clock_us - before.clock_us;
  return d;
}

/// Executes one metered SQL statement and feeds the session monitor: the
/// arrival is the virtual clock before execution, latency == service ==
/// the clock the statement consumed (the shell has no queue).
Result<QueryResult> RunMetered(OutsourcedDatabase& db, ShellSession& session,
                               const std::string& sql) {
  const uint64_t arrival_us = db.simulated_time_us();
  const MeterSample before = ReadShellMeter(db);
  auto result = db.Execute(sql, RequestContext{"shell"});
  RequestObservation obs;
  obs.tenant = "shell";
  obs.seq = session.seq++;
  obs.arrival_us = arrival_us;
  if (result.ok()) {
    obs.cls = RequestClass::kCompleted;
    obs.service_us = db.simulated_time_us() - arrival_us;
    obs.latency_us = obs.service_us;
    obs.meter = MeterDelta(ReadShellMeter(db), before);
    obs.trace = &result.value().trace;
  } else {
    obs.cls = RequestClass::kFailed;
  }
  session.monitor.Observe(obs);
  return result;
}

void PrintMeterLine(const char* label, const MeterSample& m, uint64_t cost) {
  std::printf("  %-10s requests=%llu up=%lluB down=%lluB rounds=%llu "
              "clock=%lluus cost=%llu ucr\n",
              label, static_cast<unsigned long long>(m.requests),
              static_cast<unsigned long long>(m.bytes_sent),
              static_cast<unsigned long long>(m.bytes_received),
              static_cast<unsigned long long>(m.rounds),
              static_cast<unsigned long long>(m.clock_us),
              static_cast<unsigned long long>(cost));
}

/// MONITOR prints the closed windows of the session ring (last 10).
void PrintMonitor(const ShellSession& session) {
  const MonitorReport r = session.monitor.Report();
  std::printf("  window=%lluus closed=%llu dropped=%llu (current window "
              "still open)\n",
              static_cast<unsigned long long>(r.window_us),
              static_cast<unsigned long long>(r.windows_total),
              static_cast<unsigned long long>(r.windows_dropped));
  const size_t first = r.windows.size() > 10 ? r.windows.size() - 10 : 0;
  for (size_t i = first; i < r.windows.size(); ++i) {
    const MonitorWindow& w = r.windows[i];
    if (w.offered == 0) continue;  // skip idle gap windows
    std::printf("  w%-4llu [%llu, %llu) offered=%llu completed=%llu "
                "failed=%llu p50=%lluus p99=%lluus cost=%llu ucr slow=%zu\n",
                static_cast<unsigned long long>(w.index),
                static_cast<unsigned long long>(w.start_us),
                static_cast<unsigned long long>(w.end_us),
                static_cast<unsigned long long>(w.offered),
                static_cast<unsigned long long>(w.completed),
                static_cast<unsigned long long>(w.failed),
                static_cast<unsigned long long>(w.latency_p50_us),
                static_cast<unsigned long long>(w.latency_p99_us),
                static_cast<unsigned long long>(w.cost_microcredits),
                w.slow.size());
    for (const SlowQuery& sq : w.slow) {
      std::printf("    slow: seq=%u service=%lluus up=%lluB down=%lluB\n",
                  sq.seq, static_cast<unsigned long long>(sq.service_us),
                  static_cast<unsigned long long>(sq.trace.total_bytes_sent()),
                  static_cast<unsigned long long>(
                      sq.trace.total_bytes_received()));
    }
  }
}

/// METER prints the session's cumulative meter (registry-backed, so it
/// includes the still-open window) and the per-window billing total.
void PrintMeter(OutsourcedDatabase& db, const ShellSession& session) {
  const MeterSample m = ReadShellMeter(db);
  const CostModel& cost = session.monitor.options().cost;
  PrintMeterLine("shell", m, cost.Cost(m.requests, m.bytes(), m.clock_us));
  const MonitorReport r = session.monitor.Report();
  PrintMeterLine("billed", r.total.meter, r.total.cost_microcredits);
  std::printf("  (billing closes with each %lluus window; the open window "
              "is unbilled)\n",
              static_cast<unsigned long long>(r.window_us));
}

void PrintAlerts(const ShellSession& session) {
  const MonitorReport r = session.monitor.Report();
  if (r.alerts.empty()) {
    std::printf("  no alert events\n");
    return;
  }
  for (const AlertEvent& e : r.alerts) {
    std::printf("  t=%lluus %-10s rule=%s value=%llu threshold=%llu\n",
                static_cast<unsigned long long>(e.window_end_us),
                e.firing ? "FIRING" : "resolved", e.rule.c_str(),
                static_cast<unsigned long long>(e.value),
                static_cast<unsigned long long>(e.threshold));
  }
}

void PrintResult(const QueryResult& result) {
  if (!result.groups.empty()) {
    std::printf("  %-12s %14s %8s %14s\n", "group", "sum", "count", "avg");
    for (const auto& g : result.groups) {
      std::printf("  %-12s %14lld %8llu %14.1f\n", g.key.ToString().c_str(),
                  static_cast<long long>(g.sum),
                  static_cast<unsigned long long>(g.count), g.average);
    }
    return;
  }
  if (!result.rows.empty()) {
    for (const auto& row : result.rows) {
      std::printf(" ");
      for (const Value& v : row) std::printf(" %s", v.ToString().c_str());
      std::printf("\n");
    }
    std::printf("  (%zu rows)\n", result.rows.size());
    return;
  }
  std::printf("  result: %lld (count %llu, avg %.2f)\n",
              static_cast<long long>(result.aggregate_int),
              static_cast<unsigned long long>(result.count),
              result.aggregate_double);
}

/// Strips a leading shell keyword ("EXPLAIN" / "TRACE"); returns true and
/// the remainder when present.
bool ConsumeKeyword(const std::string& sql, const char* keyword,
                    std::string* rest) {
  size_t start = sql.find_first_not_of(" \t");
  if (start == std::string::npos) return false;
  const std::string word = keyword;
  if (sql.compare(start, word.size(), word) != 0) return false;
  const size_t after = start + word.size();
  if (after >= sql.size() || (sql[after] != ' ' && sql[after] != '\t')) {
    return false;
  }
  *rest = sql.substr(after + 1);
  return true;
}

/// Trims surrounding whitespace (file names for the EXPORT commands).
std::string Trim(const std::string& s) {
  const size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  const size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::printf("  error: cannot open '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

const char* BreakerName(ProviderScoreboard::BreakerState state) {
  switch (state) {
    case ProviderScoreboard::BreakerState::kOpen:
      return "open";
    case ProviderScoreboard::BreakerState::kHalfOpen:
      return "half-open";
    default:
      return "closed";
  }
}

/// TOPOLOGY prints the deployment shape: the shard map, every group's
/// row share and wire totals, and each provider's scoreboard health.
void PrintTopology(OutsourcedDatabase& db) {
  const Topology& topo = db.topology();
  std::printf("  %zu shard group%s x %zu providers, k=%zu, %s partitioning "
              "on the key column\n",
              topo.shards, topo.shards == 1 ? "" : "s",
              topo.providers_per_shard, topo.threshold,
              PartitionerName(topo.partitioner));
  for (size_t s = 0; s < topo.shards; ++s) {
    // Every provider of a group hosts the same row ids; the first one's
    // count is the group's share of the row space.
    const size_t first = s * topo.providers_per_shard;
    const ChannelStats stats = db.shard_stats(s).value();
    std::printf("  shard %zu: %zu rows, %llu calls, %llu B moved\n", s,
                db.provider(first).num_rows(),
                static_cast<unsigned long long>(stats.calls),
                static_cast<unsigned long long>(stats.total_bytes()));
    for (size_t j = 0; j < topo.providers_per_shard; ++j) {
      const size_t i = first + j;
      const auto entry = db.scoreboard().Snapshot(i);
      std::printf("    %-10s breaker=%-9s ewma=%7.0fus samples=%llu "
                  "failures=%llu\n",
                  db.provider(i).name().c_str(), BreakerName(entry.state),
                  entry.ewma_us,
                  static_cast<unsigned long long>(entry.samples),
                  static_cast<unsigned long long>(entry.failures));
    }
  }
}

bool RunStatement(OutsourcedDatabase& db, ShellSession& session,
                  const std::string& sql) {
  std::string rest;
  if (Trim(sql) == "TOPOLOGY") {
    PrintTopology(db);
    return true;
  }
  // MONITOR / METER / ALERTS inspect the session's continuous monitor:
  // windowed series, the cumulative bill, and the alert event log.
  if (Trim(sql) == "MONITOR") {
    PrintMonitor(session);
    return true;
  }
  if (Trim(sql) == "METER") {
    PrintMeter(db, session);
    return true;
  }
  if (Trim(sql) == "ALERTS") {
    PrintAlerts(session);
    return true;
  }
  // METRICS prints the Prometheus exposition of every ssdb_* series;
  // METRICS EXPORT <file> writes the JSON snapshot instead.
  if (Trim(sql) == "METRICS") {
    std::printf("%s", db.metrics().ExportPrometheus().c_str());
    return true;
  }
  if (ConsumeKeyword(sql, "METRICS", &rest)) {
    std::string path;
    if (!ConsumeKeyword(rest, "EXPORT", &path) || Trim(path).empty()) {
      std::printf("  error: usage: METRICS [EXPORT <file>]\n");
      return false;
    }
    if (!WriteFile(Trim(path), db.metrics().ExportJson())) return false;
    std::printf("  metrics JSON written to %s\n", Trim(path).c_str());
    return true;
  }
  // TRACE EXPORT <file> dumps every span recorded so far as Chrome
  // trace-event JSON (load in chrome://tracing or Perfetto).
  if (ConsumeKeyword(sql, "TRACE", &rest)) {
    std::string path;
    if (ConsumeKeyword(rest, "EXPORT", &path)) {
      if (Trim(path).empty()) {
        std::printf("  error: usage: TRACE EXPORT <file>\n");
        return false;
      }
      if (!WriteFile(Trim(path), db.tracer().ExportChromeTrace())) {
        return false;
      }
      std::printf("  %zu spans written to %s\n", db.tracer().span_count(),
                  Trim(path).c_str());
      return true;
    }
  }
  if (ConsumeKeyword(sql, "EXPLAIN", &rest)) {
    auto cmd = ParseSql(rest);
    if (!cmd.ok()) {
      std::printf("  error: %s\n", cmd.status().ToString().c_str());
      return false;
    }
    if (cmd->kind != SqlCommand::Kind::kSelect) {
      std::printf("  error: EXPLAIN supports SELECT statements\n");
      return false;
    }
    auto plan = db.Explain(cmd->query);
    if (!plan.ok()) {
      std::printf("  error: %s\n", plan.status().ToString().c_str());
      return false;
    }
    std::printf("%s", plan->c_str());
    return true;
  }
  if (ConsumeKeyword(sql, "TRACE", &rest)) {
    auto result = RunMetered(db, session, rest);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return false;
    }
    PrintResult(*result);
    std::printf("%s", result->trace.ToString().c_str());
    const QueryTrace& t = result->trace;
    std::printf("  totals: up=%lluB down=%lluB clock=%lluus legs=%llu",
                static_cast<unsigned long long>(t.total_bytes_sent()),
                static_cast<unsigned long long>(t.total_bytes_received()),
                static_cast<unsigned long long>(t.total_clock_us()),
                static_cast<unsigned long long>(t.total_provider_legs()));
    if (t.total_attempts() != 0 || t.total_hedged() != 0 ||
        t.total_deadline_exceeded() != 0 || t.total_breaker_skips() != 0) {
      std::printf(" retries=%llu hedged=%llu deadline_exceeded=%llu "
                  "breaker_skips=%llu",
                  static_cast<unsigned long long>(t.total_attempts()),
                  static_cast<unsigned long long>(t.total_hedged()),
                  static_cast<unsigned long long>(t.total_deadline_exceeded()),
                  static_cast<unsigned long long>(t.total_breaker_skips()));
    }
    std::printf("\n");
    return true;
  }
  auto result = RunMetered(db, session, sql);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return false;
  }
  PrintResult(*result);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/2, /*n_per=*/4, /*k=*/2);
  auto db_r = OutsourcedDatabase::Create(options);
  if (!db_r.ok()) return 1;
  auto& db = *db_r.value();

  // Record spans for every statement so TRACE EXPORT has a full session
  // timeline; the tracer is off by default elsewhere.
  db.tracer().Enable(true);

  // Session monitor: 200ms virtual-time windows, default alert rules with
  // a 2s p99 SLO (generous — the demo should not page).
  MonitorOptions mon_options;
  mon_options.window_us = 200000;
  mon_options.rules = DefaultAlertRules(/*p99_slo_us=*/2000000);
  ShellSession session{Monitor(&db.metrics(), mon_options)};

  if (!db.CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) return 1;
  EmployeeGenerator gen(2026, Distribution::kUniform);
  if (!db.Insert("Employees", gen.Rows(1000)).ok()) return 1;
  std::printf(
      "Employees: 1000 rows outsourced to %zu shard groups x %zu providers "
      "(k=%zu)\n\n",
      db.shards(), db.providers_per_shard(), db.k());

  std::vector<std::string> statements;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) statements.emplace_back(argv[i]);
  } else {
    statements = {
        "TOPOLOGY",
        "SELECT COUNT(*) FROM Employees",
        "SELECT name, salary FROM Employees WHERE salary BETWEEN 199000 AND "
        "200000",
        "SELECT MEDIAN(salary) FROM Employees",
        "SELECT AVG(salary) FROM Employees WHERE dept = 7",
        "SELECT SUM(salary) FROM Employees WHERE dept BETWEEN 0 AND 3 GROUP "
        "BY dept",
        "EXPLAIN SELECT SUM(salary) FROM Employees WHERE dept = 7",
        "SELECT name FROM Employees WHERE name LIKE 'BA%'",
        "TRACE SELECT name FROM Employees WHERE name LIKE 'BA%'",
        "UPDATE Employees SET salary = 123456 WHERE dept = 99",
        "SELECT MAX(salary) FROM Employees WHERE dept = 99",
        "DELETE FROM Employees WHERE dept = 99",
        "SELECT COUNT(*) FROM Employees",
        "MONITOR",
        "METER",
        "ALERTS",
        "METRICS",
        "TRACE EXPORT sql_shell_trace.json",
    };
  }

  for (const std::string& sql : statements) {
    std::printf("ssdb> %s\n", sql.c_str());
    RunStatement(db, session, sql);
    std::printf("\n");
  }

  const ChannelStats net = db.network_stats();
  std::printf("session totals: %llu provider calls, %.1f kB moved\n",
              static_cast<unsigned long long>(net.calls),
              static_cast<double>(net.total_bytes()) / 1000.0);
  return 0;
}
