// Private information retrieval demo (§II.B).
//
// Fetches records privately from a replicated database with all three
// schemes and prints the communication / computation trade-off that the
// Sion-Carbunar argument (and the paper's §II.B) is about.
//
//   ./build/examples/example_pir_demo [db_size]

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "pir/pir.h"

using namespace ssdb;  // NOLINT: example brevity

int main(int argc, char** argv) {
  size_t n = 1 << 16;
  if (argc > 1) n = static_cast<size_t>(std::atoll(argv[1]));

  Rng rng(99);
  std::vector<uint64_t> db(n);
  for (auto& x : db) x = rng.Uniform(Fp61::kP);
  std::printf("database: %zu records of 8 bytes (%.2f MB)\n\n", n,
              static_cast<double>(n) * 8 / 1e6);

  const size_t target = n / 3;
  std::printf("%-24s %10s %12s %14s %10s\n", "scheme", "up (B)", "down (B)",
              "server words", "time (us)");

  {
    TrivialPir trivial(db);
    PirStats stats;
    StopWatch watch;
    auto r = trivial.Fetch(target, &stats);
    std::printf("%-24s %10llu %12llu %14llu %10.0f   -> %llu\n",
                "trivial (download all)",
                static_cast<unsigned long long>(stats.bytes_up),
                static_cast<unsigned long long>(stats.bytes_down),
                static_cast<unsigned long long>(stats.server_word_ops),
                watch.ElapsedMicros(),
                static_cast<unsigned long long>(r.value_or(0)));
  }
  {
    TwoServerXorPir xorpir(db);
    PirStats stats;
    StopWatch watch;
    auto r = xorpir.Fetch(target, &rng, &stats);
    std::printf("%-24s %10llu %12llu %14llu %10.0f   -> %llu\n",
                "2-server XOR (sqrt N)",
                static_cast<unsigned long long>(stats.bytes_up),
                static_cast<unsigned long long>(stats.bytes_down),
                static_cast<unsigned long long>(stats.server_word_ops),
                watch.ElapsedMicros(),
                static_cast<unsigned long long>(r.value_or(0)));
  }
  for (size_t servers : {2UL, 3UL, 4UL}) {
    auto poly = PolyPir::Create(db, servers);
    if (!poly.ok()) continue;
    PirStats stats;
    StopWatch watch;
    auto r = poly->Fetch(target, &rng, &stats);
    char label[64];
    std::snprintf(label, sizeof(label), "%zu-server polynomial", servers);
    std::printf("%-24s %10llu %12llu %14llu %10.0f   -> %llu\n", label,
                static_cast<unsigned long long>(stats.bytes_up),
                static_cast<unsigned long long>(stats.bytes_down),
                static_cast<unsigned long long>(stats.server_word_ops),
                watch.ElapsedMicros(),
                static_cast<unsigned long long>(r.value_or(0)));
  }

  std::printf(
      "\nevery multi-server scheme still touches the whole database on the\n"
      "server side — the Sion-Carbunar observation that trivial transfer\n"
      "beats PIR on *time* whenever bandwidth is cheap relative to server\n"
      "compute, even though PIR wins on *bytes*.\n");
  return 0;
}
